package rat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	tests := []struct {
		name         string
		p, q         int64
		wantP, wantQ int64
	}{
		{"lowest terms kept", 1, 2, 1, 2},
		{"reduces", 2, 4, 1, 2},
		{"negative denominator", 1, -2, -1, 2},
		{"double negative", -3, -6, 1, 2},
		{"zero", 0, 5, 0, 1},
		{"integer", 42, 1, 42, 1},
		{"large reduction", 100, 250, 2, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := New(tt.p, tt.q)
			if r.Num() != tt.wantP || r.Den() != tt.wantQ {
				t.Errorf("New(%d,%d) = %d/%d, want %d/%d", tt.p, tt.q, r.Num(), r.Den(), tt.wantP, tt.wantQ)
			}
		})
	}
}

func TestNewPanicsOnZeroDenominator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestParse(t *testing.T) {
	tests := []struct {
		in   string
		want Rat
		ok   bool
	}{
		{"1/2", New(1, 2), true},
		{" 3 / 4 ", New(3, 4), true},
		{"-1/3", New(-1, 3), true},
		{"1/-3", New(-1, 3), true},
		{"7", FromInt(7), true},
		{"-7", FromInt(-7), true},
		{"0.25", New(1, 4), true},
		{"-0.5", New(-1, 2), true},
		{".5", New(1, 2), true},
		{"2.", Zero, false},
		{"", Zero, false},
		{"a/b", Zero, false},
		{"1/0", Zero, false},
		{"1.2.3", Zero, false},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := Parse(tt.in)
			if (err == nil) != tt.ok {
				t.Fatalf("Parse(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
			}
			if tt.ok && !got.Equal(tt.want) {
				t.Errorf("Parse(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse(bad) did not panic")
		}
	}()
	MustParse("not-a-rat")
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Rat
		want Rat
	}{
		{"add halves", New(1, 2).Add(New(1, 2)), One},
		{"add thirds", New(1, 3).Add(New(1, 6)), New(1, 2)},
		{"sub", New(3, 4).Sub(New(1, 4)), New(1, 2)},
		{"sub to negative", New(1, 4).Sub(New(3, 4)), New(-1, 2)},
		{"mul", New(2, 3).Mul(New(3, 4)), New(1, 2)},
		{"mul by zero", New(2, 3).Mul(Zero), Zero},
		{"div", New(1, 2).Div(New(1, 4)), FromInt(2)},
		{"neg", New(1, 2).Neg(), New(-1, 2)},
		{"mulint", New(1, 3).MulInt(6), FromInt(2)},
		{"inv", New(2, 5).Inv(), New(5, 2)},
		{"zero value usable", Rat{}.Add(One), One},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.Equal(tt.want) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	One.Div(Zero)
}

func TestFloorCeil(t *testing.T) {
	tests := []struct {
		r           Rat
		floor, ceil int64
	}{
		{New(7, 2), 3, 4},
		{New(-7, 2), -4, -3},
		{FromInt(5), 5, 5},
		{FromInt(-5), -5, -5},
		{Zero, 0, 0},
		{New(1, 3), 0, 1},
		{New(-1, 3), -1, 0},
	}
	for _, tt := range tests {
		if got := tt.r.Floor(); got != tt.floor {
			t.Errorf("(%v).Floor() = %d, want %d", tt.r, got, tt.floor)
		}
		if got := tt.r.Ceil(); got != tt.ceil {
			t.Errorf("(%v).Ceil() = %d, want %d", tt.r, got, tt.ceil)
		}
	}
}

func TestComparison(t *testing.T) {
	if !New(1, 3).Less(New(1, 2)) {
		t.Error("1/3 should be < 1/2")
	}
	if New(1, 2).Less(New(1, 2)) {
		t.Error("1/2 should not be < 1/2")
	}
	if !New(1, 2).LessEq(New(1, 2)) {
		t.Error("1/2 should be ≤ 1/2")
	}
	if got := New(-1, 2).Sign(); got != -1 {
		t.Errorf("Sign(-1/2) = %d, want -1", got)
	}
	if got := Zero.Sign(); got != 0 {
		t.Errorf("Sign(0) = %d, want 0", got)
	}
	if !New(3, 4).Max(New(2, 3)).Equal(New(3, 4)) {
		t.Error("Max wrong")
	}
	if !New(3, 4).Min(New(2, 3)).Equal(New(2, 3)) {
		t.Error("Min wrong")
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		r    Rat
		want string
	}{
		{New(1, 2), "1/2"},
		{FromInt(3), "3"},
		{New(-2, 4), "-1/2"},
		{Zero, "0"},
		{Rat{}, "0"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("String(%#v) = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestFloat64(t *testing.T) {
	if got := New(1, 2).Float64(); got != 0.5 {
		t.Errorf("Float64(1/2) = %v, want 0.5", got)
	}
	if got := (Rat{}).Float64(); got != 0 {
		t.Errorf("Float64(zero value) = %v, want 0", got)
	}
}

// bounded draws keep property inputs inside the overflow-safe window.
func boundedRat(p, q int64) Rat {
	const m = 1 << 20
	p %= m
	q %= m
	if q == 0 {
		q = 1
	}
	return New(p, q)
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(p1, q1, p2, q2 int64) bool {
		a, b := boundedRat(p1, q1), boundedRat(p2, q2)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(p1, q1, p2, q2 int64) bool {
		a, b := boundedRat(p1, q1), boundedRat(p2, q2)
		return a.Add(b).Sub(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulDivRoundTrip(t *testing.T) {
	f := func(p1, q1, p2, q2 int64) bool {
		a, b := boundedRat(p1, q1), boundedRat(p2, q2)
		if b.IsZero() {
			return true
		}
		return a.Mul(b).Div(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloorCeilSandwich(t *testing.T) {
	f := func(p, q int64) bool {
		r := boundedRat(p, q)
		fl, ce := r.Floor(), r.Ceil()
		if FromInt(fl).Cmp(r) > 0 || r.Cmp(FromInt(ce)) > 0 {
			return false
		}
		if r.IsInt() {
			return fl == ce
		}
		return ce == fl+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(p, q int64) bool {
		r := boundedRat(p, q)
		got, err := Parse(r.String())
		return err == nil && got.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCmpConsistentWithFloat(t *testing.T) {
	f := func(p1, q1, p2, q2 int64) bool {
		a, b := boundedRat(p1, q1), boundedRat(p2, q2)
		fa, fb := a.Float64(), b.Float64()
		if math.Abs(fa-fb) < 1e-9 {
			return true // float too coarse to distinguish; skip
		}
		return (a.Cmp(b) < 0) == (fa < fb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
