package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"smallbuffers/internal/live"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/service"
)

// runs lists the daemon's known runs (GET /v1/runs).
func (c *client) runs(ctx context.Context) ([]service.Report, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var wire struct {
		Runs []service.Report `json:"runs"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("decoding run list: %w", err)
	}
	return wire.Runs, nil
}

// liveView fetches one run's live snapshot (GET /v1/runs/{id}/live).
func (c *client) liveView(ctx context.Context, runID string) (live.View, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+runID+"/live", nil)
	if err != nil {
		return live.View{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return live.View{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return live.View{}, decodeError(resp)
	}
	var v live.View
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&v); err != nil {
		return live.View{}, fmt.Errorf("decoding live view: %w", err)
	}
	return v, nil
}

// DaemonLive is one daemon's contribution to a fleet snapshot: its
// in-flight runs' live views, or the error that made it unreachable.
// Unreachable daemons are data, not failures — a fleet monitor keeps
// rendering the healthy rest.
type DaemonLive struct {
	Endpoint string      `json:"endpoint"`
	Err      string      `json:"error,omitempty"`
	Runs     []live.View `json:"runs,omitempty"`
}

// FleetLive is the merged fleet-wide progress/occupancy view: per-daemon
// in-flight runs plus aggregates folded across every one of them —
// cells summed, rates summed, and the metric summaries merged under
// metrics.MergeAll (the same rules as final reports), so the fleet's
// recent-window occupancy reads like a single run's.
type FleetLive struct {
	Daemons           []DaemonLive      `json:"daemons"`
	RunsInFlight      int               `json:"runs_in_flight"`
	CellsTotal        int               `json:"cells_total"`
	CellsDone         int               `json:"cells_done"`
	CellsInFlight     int               `json:"cells_in_flight"`
	CellsPerSecMillis int64             `json:"cells_per_sec_millis"`
	Metrics           []metrics.Summary `json:"metrics,omitempty"`
}

// Progress returns fleet-wide completion in per-mille (0 when no cells
// are known).
func (f *FleetLive) Progress() int {
	if f.CellsTotal == 0 {
		return 0
	}
	return f.CellsDone * 1000 / f.CellsTotal
}

// LiveSnapshot polls every daemon's run list and /live views and merges
// them into one fleet-wide snapshot. Only queued/running runs are
// polled — finished runs linger in daemon caches indefinitely and are
// not "live". Daemons are visited in configured order and runs within a
// daemon arrive sorted, so the snapshot's shape is stable poll to poll;
// per-daemon errors are recorded in the snapshot rather than failing it.
func LiveSnapshot(ctx context.Context, cfg Config) (*FleetLive, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("fleet: no endpoints configured")
	}
	snap := &FleetLive{}
	var perRun []map[string]metrics.Summary
	for _, ep := range cfg.Endpoints {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d := DaemonLive{Endpoint: ep}
		c := newClient(ep)
		reports, err := c.runs(ctx)
		if err != nil {
			d.Err = err.Error()
			snap.Daemons = append(snap.Daemons, d)
			continue
		}
		for _, rep := range reports {
			if rep.Status != service.StatusQueued && rep.Status != service.StatusRunning {
				continue
			}
			v, err := c.liveView(ctx, rep.ID)
			if err != nil {
				// The run may have finished or been evicted between the
				// list and the poll; skip it rather than distorting the
				// aggregate with an error placeholder.
				continue
			}
			d.Runs = append(d.Runs, v)
			snap.RunsInFlight++
			snap.CellsTotal += v.CellsTotal
			snap.CellsDone += v.CellsDone
			snap.CellsInFlight += v.CellsInFlight
			snap.CellsPerSecMillis += v.CellsPerSecMillis
			if len(v.Metrics) > 0 {
				m := make(map[string]metrics.Summary, len(v.Metrics))
				for _, s := range v.Metrics {
					m[s.Name] = s
				}
				perRun = append(perRun, m)
			}
		}
		snap.Daemons = append(snap.Daemons, d)
	}
	if merged, err := metrics.MergeAll(perRun); err == nil {
		snap.Metrics = metrics.Records(merged)
	}
	return snap, nil
}

// LiveWatch polls LiveSnapshot every interval, invoking fn with each
// snapshot, until fn returns false or ctx is cancelled. Pacing flows
// through the injected Clock, so tests drive the poll schedule
// deterministically.
func LiveWatch(ctx context.Context, cfg Config, interval time.Duration, fn func(*FleetLive) bool) error {
	cfg = cfg.withDefaults()
	if interval <= 0 {
		interval = time.Second
	}
	for {
		snap, err := LiveSnapshot(ctx, cfg)
		if err != nil {
			return err
		}
		if !fn(snap) {
			return nil
		}
		if err := cfg.Clock.Sleep(ctx, interval); err != nil {
			return err
		}
	}
}
