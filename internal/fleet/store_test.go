package fleet

import (
	"context"
	"testing"
	"time"

	"smallbuffers/internal/harness"
	"smallbuffers/internal/scenario"
	"smallbuffers/internal/service"
	"smallbuffers/internal/store"
)

func openStoreFor(t *testing.T, root string, sc *scenario.Scenario) *store.Store {
	t.Helper()
	dig, err := sc.Digest()
	if err != nil {
		t.Fatal(err)
	}
	total, err := sc.GridSize()
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(root, dig, harness.IndexRange{Lo: 0, Hi: total}, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestFleetStoreMatchesLocalDigest is the store-mode core invariant: the
// merge streams to disk, coordinator memory stays O(1) in cells, and the
// digest re-derived from the stored bytes equals the local in-memory run.
func TestFleetStoreMatchesLocalDigest(t *testing.T) {
	sc := gridScenario(t, "fleet-store-basic", 6, 60, 0)
	want := localDigest(t, sc)
	root := t.TempDir()
	st := openStoreFor(t, root, sc)

	var eps []string
	for i := 0; i < 3; i++ {
		eps = append(eps, newDaemon(t, service.Config{Workers: 2, SweepWorkers: 2}).addr())
	}
	res, err := Run(context.Background(), Config{Endpoints: eps, Store: st, Logf: t.Logf}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.ResultsDigest != want {
		t.Fatalf("store-mode digest %s, local %s", res.Summary.ResultsDigest, want)
	}
	if res.Records != nil {
		t.Fatalf("store mode returned %d in-memory records", len(res.Records))
	}
	if res.Summary.MaxBufferedCells != 0 {
		t.Fatalf("store mode buffered %d cells in coordinator memory", res.Summary.MaxBufferedCells)
	}
	if res.Summary.Completed != 12 || res.Summary.Failed != 0 || res.Summary.Resumed != 0 {
		t.Errorf("summary counts: %+v", res.Summary)
	}
	if !st.Complete() {
		t.Fatalf("store incomplete after clean run: %d of 12", st.Count())
	}
	if st.RecordsDigest() != want {
		t.Fatalf("manifest digest %s, want %s", st.RecordsDigest(), want)
	}
	if len(res.Summary.Metrics) == 0 {
		t.Error("store mode dropped the merged metrics")
	}

	// The memory-mode control: the same run without a store buffers the
	// whole grid — the high-water mark the store exists to eliminate.
	ctrl, err := Run(context.Background(), Config{Endpoints: eps, Logf: t.Logf}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Summary.MaxBufferedCells != 12 {
		t.Fatalf("memory mode high-water %d, want 12", ctrl.Summary.MaxBufferedCells)
	}
	if ctrl.Summary.ResultsDigest != want {
		t.Fatalf("memory-mode digest %s, local %s", ctrl.Summary.ResultsDigest, want)
	}
}

// TestFleetStoreResume pre-populates the store with part of the grid (as
// a killed earlier run would leave it), then requires the fleet to
// dispatch only the remainder and still reproduce the full local digest.
func TestFleetStoreResume(t *testing.T) {
	sc := gridScenario(t, "fleet-store-resume", 8, 40, 0)
	agg, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	recs := agg.Records()
	want := agg.Digest()
	root := t.TempDir()

	// A previous "run" persisted cells 0..4 and 9..12 before dying.
	prev := openStoreFor(t, root, sc)
	for _, i := range []int{0, 1, 2, 3, 4, 9, 10, 11, 12} {
		if err := prev.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := prev.Close(); err != nil {
		t.Fatal(err)
	}

	st := openStoreFor(t, root, sc)
	eps := []string{
		newDaemon(t, service.Config{Workers: 2, SweepWorkers: 2}).addr(),
		newDaemon(t, service.Config{Workers: 2, SweepWorkers: 2}).addr(),
	}
	res, err := Run(context.Background(), Config{Endpoints: eps, Store: st, Logf: t.Logf}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.ResultsDigest != want {
		t.Fatalf("resumed digest %s, fresh %s", res.Summary.ResultsDigest, want)
	}
	if res.Summary.Resumed != 9 {
		t.Fatalf("resumed %d cells, want 9", res.Summary.Resumed)
	}
	dispatched := 0
	for _, ds := range res.Summary.Daemons {
		dispatched += ds.Cells
	}
	if dispatched != 16-9 {
		t.Fatalf("daemons executed %d cells, want %d (the uncovered remainder)", dispatched, 16-9)
	}
	if err := VerifyLocal(context.Background(), sc, res.Summary.ResultsDigest); err != nil {
		t.Errorf("VerifyLocal after resume: %v", err)
	}
}

// TestFleetStoreAlreadyComplete: resuming a finished entry dispatches
// nothing at all and returns the stored digest.
func TestFleetStoreAlreadyComplete(t *testing.T) {
	sc := gridScenario(t, "fleet-store-done", 4, 30, 0)
	agg, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	prev := openStoreFor(t, root, sc)
	for _, rec := range agg.Records() {
		if err := prev.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	prev.Close()

	st := openStoreFor(t, root, sc)
	// A dead endpoint: any dispatch would fail the run.
	res, err := Run(context.Background(), Config{Endpoints: []string{"127.0.0.1:1"}, Store: st, FailureLimit: 1, Logf: t.Logf}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.ResultsDigest != agg.Digest() {
		t.Fatalf("digest %s, want %s", res.Summary.ResultsDigest, agg.Digest())
	}
	if res.Summary.Resumed != 8 || res.Summary.Completed != 8 {
		t.Fatalf("summary: %+v", res.Summary)
	}
	for _, ds := range res.Summary.Daemons {
		if ds.Dispatches != 0 {
			t.Fatalf("complete entry still dispatched to %s", ds.Endpoint)
		}
	}
}

// TestFleetStoreSurvivesDaemonDeath is the durability cross of the death
// test: a daemon dies mid-stream, the cells it delivered stay durable,
// only the remainder redispatches, and the digest still matches local.
func TestFleetStoreSurvivesDaemonDeath(t *testing.T) {
	sc := gridScenario(t, "fleet-store-death", 8, 40, 2000)
	want := localDigest(t, sc)
	st := openStoreFor(t, t.TempDir(), sc)

	victim := newDaemon(t, service.Config{Workers: 2, SweepWorkers: 1})
	victim.killAfter = 3
	healthy1 := newDaemon(t, service.Config{Workers: 2, SweepWorkers: 2})
	healthy2 := newDaemon(t, service.Config{Workers: 2, SweepWorkers: 2})

	cfg := Config{
		Endpoints:    []string{victim.addr(), healthy1.addr(), healthy2.addr()},
		Store:        st,
		BackoffBase:  time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		FailureLimit: 2,
		Logf:         t.Logf,
	}
	res, err := Run(context.Background(), cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.ResultsDigest != want {
		t.Fatalf("store-mode digest after death %s, local %s (retries=%d)", res.Summary.ResultsDigest, want, res.Summary.Retries)
	}
	if !victim.dead.Load() {
		t.Fatal("kill switch never fired")
	}
	if res.Summary.MaxBufferedCells != 0 {
		t.Fatalf("store mode buffered %d cells", res.Summary.MaxBufferedCells)
	}
	if !st.Complete() {
		t.Fatalf("store incomplete: %d of 16", st.Count())
	}
}

// TestFleetStoreWrongEntry: a store keyed by a different scenario or a
// wrong span refuses to merge.
func TestFleetStoreWrongEntry(t *testing.T) {
	sc := gridScenario(t, "fleet-store-wrong", 4, 30, 0)
	other := gridScenario(t, "fleet-store-other", 4, 30, 0)
	st := openStoreFor(t, t.TempDir(), other)
	if _, err := Run(context.Background(), Config{Endpoints: []string{"127.0.0.1:1"}, Store: st}, sc); err == nil {
		t.Fatal("store keyed by another scenario accepted")
	}
}
