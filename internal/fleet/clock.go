// Package fleet is the distribution tier: a coordinator that splits one
// scenario's sweep grid into deterministic index-range shards, dispatches
// them to a fleet of aqtserve daemons, and merges the streamed per-cell
// records back into the exact record set — and RecordsDigest — of a
// local single-process run.
//
// # Correctness model
//
// Cell indices are a global property of the grid (see harness.Cell), so
// shards are just index ranges and the merge is mechanical: collect every
// cell exactly once, sort by index, digest. The coordinator enforces
// "exactly once" structurally — a failed shard's partial records are
// discarded wholesale before re-dispatch, and a stolen shard's already-
// streamed records are committed while only the uncovered remainder is
// re-enqueued — so the merged digest either equals the local digest or
// the run errors. There is no "close enough".
//
// # Determinism discipline
//
// Simulation results never depend on the fleet: scheduling, retries,
// steals, and daemon failures change only where cells execute. Wall-clock
// time is confined to the injected Clock (aqtlint's nowallclock analyzer
// covers this package), so tests drive backoff deterministically.
package fleet

import (
	"context"
	"time"
)

// Clock abstracts the coordinator's only uses of wall time: stamping the
// fleet summary and sleeping for backoff. Injecting it keeps retry
// schedules testable and keeps time.Now out of digest-adjacent code.
type Clock interface {
	// Now returns the current time. Used only for elapsed-time summary
	// fields, never for anything that reaches simulation results.
	Now() time.Time
	// Sleep blocks for d or until ctx is cancelled, returning ctx.Err()
	// in the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// SystemClock returns the real-time Clock used outside tests.
func SystemClock() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time {
	return time.Now() //aqtlint:allow nowallclock -- the one sanctioned wall-clock read; everything else injects Clock
}

func (systemClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
