// Package fleet is the distribution tier: a coordinator that splits one
// scenario's sweep grid into deterministic index-range shards, dispatches
// them to a fleet of aqtserve daemons, and merges the streamed per-cell
// records back into the exact record set — and RecordsDigest — of a
// local single-process run.
//
// # Correctness model
//
// Cell indices are a global property of the grid (see harness.Cell), so
// shards are just index ranges and the merge is mechanical: collect every
// cell exactly once, sort by index, digest. The coordinator enforces
// "exactly once" structurally — a failed shard's partial records are
// discarded wholesale before re-dispatch, and a stolen shard's already-
// streamed records are committed while only the uncovered remainder is
// re-enqueued — so the merged digest either equals the local digest or
// the run errors. There is no "close enough".
//
// # Determinism discipline
//
// Simulation results never depend on the fleet: scheduling, retries,
// steals, and daemon failures change only where cells execute. Wall-clock
// time is confined to the injected Clock (aqtlint's nowallclock analyzer
// covers this package), so tests drive backoff deterministically.
package fleet

import "smallbuffers/internal/live"

// Clock abstracts the coordinator's only uses of wall time: stamping the
// fleet summary and sleeping for backoff. Injecting it keeps retry
// schedules testable and keeps time.Now out of digest-adjacent code.
// The canonical definition lives in internal/live (the observation tier
// shares it and sits below both fleet and service in the import graph);
// the alias keeps every existing fleet.Clock caller source-compatible.
type Clock = live.Clock

// SystemClock returns the real-time Clock used outside tests. It is
// internal/live's system clock — the repository's one sanctioned
// wall-clock read.
func SystemClock() Clock { return live.SystemClock() }
