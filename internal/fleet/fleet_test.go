package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smallbuffers/internal/adversary"
	"smallbuffers/internal/baseline"
	"smallbuffers/internal/network"
	"smallbuffers/internal/registry"
	"smallbuffers/internal/scenario"
	"smallbuffers/internal/service"
	"smallbuffers/internal/sim"
)

// A test-only protocol with a per-round delay so tests can hold shards
// in flight long enough to kill daemons and trigger steals. The delay
// changes wall time only, never results.
func init() {
	err := registry.RegisterProtocol(registry.Protocol{
		Name:   "fleet-slow-fifo",
		Doc:    "test-only: greedy FIFO with a per-round delay",
		Params: registry.Schema{{Name: "delay_us", Kind: registry.Int, Doc: "per-round delay in µs", Default: 0}},
		Build: func(p registry.Params) (sim.Protocol, error) {
			return &delayedProto{inner: baseline.NewGreedy(baseline.FIFO{}), delay: time.Duration(p.Int("delay_us")) * time.Microsecond}, nil
		},
	})
	if err != nil {
		panic(err)
	}
}

type delayedProto struct {
	inner sim.Protocol
	delay time.Duration
}

func (p *delayedProto) Name() string { return p.inner.Name() }

func (p *delayedProto) Attach(nw *network.Network, bound adversary.Bound, dests []network.NodeID) error {
	return p.inner.Attach(nw, bound, dests)
}

func (p *delayedProto) Decide(v sim.View) ([]sim.Forward, error) {
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	return p.inner.Decide(v)
}

// gridScenario renders a seeds×rounds sweep; delayUS > 0 selects the
// slow test protocol.
func gridScenario(t *testing.T, name string, seeds, rounds, delayUS int) *scenario.Scenario {
	t.Helper()
	seedList := make([]string, seeds)
	for i := range seedList {
		seedList[i] = strconv.Itoa(i + 1)
	}
	proto := `{"name": "ppts"}`
	if delayUS > 0 {
		proto = fmt.Sprintf(`{"name": "fleet-slow-fifo", "params": {"delay_us": %d}}`, delayUS)
	}
	src := fmt.Sprintf(`{
		"name": %q,
		"topology": {"name": "path", "params": {"n": 16}},
		"protocol": %s,
		"adversary": {"name": "random", "params": {"d": 2}},
		"bound": {"rho": "1/2", "sigma": 2},
		"rounds": [%d, %d],
		"seeds": [%s]
	}`, name, proto, rounds, rounds*2, strings.Join(seedList, ", "))
	sc, err := scenario.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// daemon is one in-process aqtserve: a service behind an httptest
// listener, with a kill switch that aborts in-flight connections and
// refuses everything afterwards — the closest in-process stand-in for
// SIGKILL.
type daemon struct {
	svc  *service.Server
	ts   *httptest.Server
	dead atomic.Bool

	// killAfter > 0 arms the switch: the daemon dies as soon as it has
	// written that many stream lines (across all streams).
	killAfter   int64
	streamLines atomic.Int64
}

func newDaemon(t *testing.T, cfg service.Config) *daemon {
	t.Helper()
	d := &daemon{svc: service.New(cfg)}
	d.ts = httptest.NewServer(http.HandlerFunc(d.serve))
	t.Cleanup(func() {
		d.ts.Close()
		d.svc.Close()
	})
	return d
}

func (d *daemon) addr() string { return strings.TrimPrefix(d.ts.URL, "http://") }

func (d *daemon) kill() {
	if d.dead.CompareAndSwap(false, true) {
		go d.ts.CloseClientConnections()
	}
}

func (d *daemon) serve(w http.ResponseWriter, r *http.Request) {
	if d.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	if d.killAfter > 0 && strings.HasSuffix(r.URL.Path, "/stream") {
		w = &killingWriter{d: d, inner: w}
	}
	d.svc.ServeHTTP(w, r)
}

// killingWriter counts stream lines and pulls the kill switch at the
// threshold, so the daemon reliably dies mid-stream: some cells have
// been delivered, the rest never will be.
type killingWriter struct {
	d     *daemon
	inner http.ResponseWriter
}

func (k *killingWriter) Header() http.Header  { return k.inner.Header() }
func (k *killingWriter) WriteHeader(code int) { k.inner.WriteHeader(code) }
func (k *killingWriter) Flush()               { _ = http.NewResponseController(k.inner).Flush() }
func (k *killingWriter) Write(p []byte) (int, error) {
	if k.d.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	n, err := k.inner.Write(p)
	lines := k.d.streamLines.Add(int64(strings.Count(string(p[:n]), "\n")))
	if lines >= k.d.killAfter {
		k.d.kill()
		panic(http.ErrAbortHandler)
	}
	return n, err
}

func localDigest(t *testing.T, sc *scenario.Scenario) string {
	t.Helper()
	agg, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return agg.Digest()
}

// TestFleetMatchesLocalDigest is the core invariant: a healthy 3-daemon
// fleet reproduces the local single-process records digest exactly.
func TestFleetMatchesLocalDigest(t *testing.T) {
	sc := gridScenario(t, "fleet-basic", 6, 60, 0)
	want := localDigest(t, sc)

	var eps []string
	for i := 0; i < 3; i++ {
		eps = append(eps, newDaemon(t, service.Config{Workers: 2, SweepWorkers: 2}).addr())
	}
	res, err := Run(context.Background(), Config{Endpoints: eps, Logf: t.Logf}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.ResultsDigest != want {
		t.Fatalf("fleet digest %s, local %s", res.Summary.ResultsDigest, want)
	}
	if res.Summary.Requested != 12 || res.Summary.Completed != 12 || res.Summary.Failed != 0 {
		t.Errorf("summary counts: %+v", res.Summary)
	}
	if len(res.Records) != 12 {
		t.Fatalf("%d records, want 12", len(res.Records))
	}
	for i, rec := range res.Records {
		if rec.Index != i {
			t.Fatalf("record %d has index %d", i, rec.Index)
		}
	}
	cells := 0
	for _, ds := range res.Summary.Daemons {
		cells += ds.Cells
	}
	if cells != 12 {
		t.Errorf("daemon cell counts sum to %d, want 12", cells)
	}
	if err := VerifyLocal(context.Background(), sc, res.Summary.ResultsDigest); err != nil {
		t.Errorf("VerifyLocal: %v", err)
	}
	if err := VerifyLocal(context.Background(), sc, "sha256:bogus"); err == nil {
		t.Error("VerifyLocal accepted a bogus digest")
	}
}

// TestFleetSurvivesDaemonDeath kills one daemon mid-stream (after it has
// delivered a few cells) and requires the merged digest to still match
// the local run: the dead daemon's partial shards are discarded and
// re-dispatched, never double-merged.
func TestFleetSurvivesDaemonDeath(t *testing.T) {
	sc := gridScenario(t, "fleet-death", 8, 40, 2000)
	want := localDigest(t, sc)

	victim := newDaemon(t, service.Config{Workers: 2, SweepWorkers: 1})
	victim.killAfter = 3 // die after three stream lines: mid-shard by construction
	healthy1 := newDaemon(t, service.Config{Workers: 2, SweepWorkers: 2})
	healthy2 := newDaemon(t, service.Config{Workers: 2, SweepWorkers: 2})

	cfg := Config{
		Endpoints:    []string{victim.addr(), healthy1.addr(), healthy2.addr()},
		BackoffBase:  time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		FailureLimit: 2,
		Logf:         t.Logf,
	}
	res, err := Run(context.Background(), cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.ResultsDigest != want {
		t.Fatalf("fleet digest %s, local %s (retries=%d)", res.Summary.ResultsDigest, want, res.Summary.Retries)
	}
	if !victim.dead.Load() {
		t.Fatal("kill switch never fired")
	}
	if res.Summary.Retries == 0 {
		t.Error("daemon died mid-stream but retries = 0")
	}
	var quarantined bool
	for _, ds := range res.Summary.Daemons {
		if ds.Endpoint == victim.addr() && ds.Quarantined {
			quarantined = true
		}
	}
	if !quarantined {
		t.Error("dead daemon not quarantined")
	}
}

// TestFleetStealsFromSlowDaemon pairs a fast daemon with a deliberately
// serial one: the fast daemon finishes its shard, goes idle, and must
// steal from the straggler — and the merged digest still matches local.
func TestFleetStealsFromSlowDaemon(t *testing.T) {
	sc := gridScenario(t, "fleet-steal", 8, 30, 3000)
	want := localDigest(t, sc)

	fast := newDaemon(t, service.Config{Workers: 2, SweepWorkers: 4})
	slow := newDaemon(t, service.Config{Workers: 1, SweepWorkers: 1})

	cfg := Config{
		Endpoints:         []string{fast.addr(), slow.addr()},
		ShardsPerDaemon:   1, // one 8-cell shard each: maximal skew
		InFlightPerDaemon: 1,
		MinStealCells:     2,
		Logf:              t.Logf,
	}
	res, err := Run(context.Background(), cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.ResultsDigest != want {
		t.Fatalf("fleet digest %s, local %s", res.Summary.ResultsDigest, want)
	}
	if res.Summary.Steals == 0 {
		t.Error("fast daemon never stole from the straggler")
	}
}

// TestFleetFailsWithoutHealthyDaemons points the coordinator at nothing
// but closed ports: every daemon quarantines and the run fails rather
// than hangs.
func TestFleetFailsWithoutHealthyDaemons(t *testing.T) {
	// Reserve ports by opening and closing listeners.
	dead := make([]string, 2)
	for i := range dead {
		ts := httptest.NewServer(http.NotFoundHandler())
		dead[i] = strings.TrimPrefix(ts.URL, "http://")
		ts.Close()
	}
	sc := gridScenario(t, "fleet-dead", 4, 20, 0)
	clk := &fakeClock{}
	cfg := Config{
		Endpoints:    dead,
		FailureLimit: 2,
		Clock:        clk,
		Logf:         t.Logf,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := Run(ctx, cfg, sc)
	if err == nil || !strings.Contains(err.Error(), "no healthy daemons") {
		t.Fatalf("err = %v, want no-healthy-daemons", err)
	}
	if clk.slept.Load() == 0 {
		t.Error("no backoff was served before quarantine")
	}
}

// TestFleetRejectsShardedScenario: the coordinator owns sharding.
func TestFleetRejectsShardedScenario(t *testing.T) {
	sub, err := gridScenario(t, "fleet-pre-sharded", 4, 20, 0).Slice(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), Config{Endpoints: []string{"127.0.0.1:1"}}, sub); err == nil {
		t.Fatal("pre-sharded scenario accepted")
	}
	if _, err := Run(context.Background(), Config{}, gridScenario(t, "fleet-no-eps", 2, 20, 0)); err == nil {
		t.Fatal("empty endpoint list accepted")
	}
}

// fakeClock advances a synthetic time on every Sleep, so backoff-heavy
// paths run instantly and deterministically.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept atomic.Int64
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
	c.slept.Add(int64(d))
	return nil
}

// TestBackoffSchedule pins the capped exponential shape.
func TestBackoffSchedule(t *testing.T) {
	co := &coordinator{cfg: Config{BackoffBase: 100 * time.Millisecond, BackoffMax: 2 * time.Second}.withDefaults()}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second,
		2 * time.Second,
	}
	for i, w := range want {
		if got := co.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}
