package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"smallbuffers/internal/harness"
	"smallbuffers/internal/metrics"
	"smallbuffers/internal/scenario"
	"smallbuffers/internal/service"
	"smallbuffers/internal/store"
)

// Config sizes the coordinator. Endpoints is required; every other field
// has a production-lean default.
type Config struct {
	// Endpoints lists the aqtserve daemons ("host:port" or full URLs).
	Endpoints []string
	// ShardsPerDaemon sets the initial partition: the grid splits into
	// len(Endpoints) × ShardsPerDaemon index-range shards (clamped to the
	// cell count). More shards per daemon smooths skewed grids at the cost
	// of more submissions. Default 2.
	ShardsPerDaemon int
	// InFlightPerDaemon caps concurrent shard streams per daemon.
	// Default 2.
	InFlightPerDaemon int
	// MaxAttempts bounds how many times one shard may be dispatched after
	// losing work (daemon died mid-stream); exceeding it fails the fleet
	// run. Transient submit rejections (saturation, drain) do not consume
	// attempts — no work was lost. Default 4.
	MaxAttempts int
	// FailureLimit quarantines a daemon after this many consecutive
	// failures; quarantine is permanent for the run. When every daemon is
	// quarantined the run fails. Default 3.
	FailureLimit int
	// BackoffBase and BackoffMax shape the capped exponential backoff a
	// daemon serves after consecutive failures: min(BackoffMax,
	// BackoffBase·2^(failures-1)). Defaults 100ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MinStealCells is the smallest piece work stealing may create: a
	// victim is only split while its uncovered remainder is at least
	// twice this. Default 4.
	MinStealCells int
	// Store, when set, is the durable merge sink: every received record
	// streams to disk as it arrives instead of accumulating in
	// coordinator memory (the merge holds O(1) cells at any grid size —
	// see Summary.MaxBufferedCells), cells the store already covers are
	// not dispatched at all (checkpoint/resume — a killed run picks up
	// where its store left off), and the final digest is re-derived by
	// streaming the records back off disk in index order. The entry must
	// be keyed by this scenario's digest and span its whole grid; the
	// caller opens and closes it. Result.Records is nil in store mode.
	// The merged digest is byte-identical with and without a store —
	// persistence changes where records live, never what they contain.
	Store *store.Store
	// Clock injects time for backoff and the summary's elapsed fields.
	// Defaults to SystemClock(). Simulation results never depend on it.
	Clock Clock
	// Logf, when set, receives human-oriented progress lines (dispatches,
	// failures, steals).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ShardsPerDaemon <= 0 {
		c.ShardsPerDaemon = 2
	}
	if c.InFlightPerDaemon <= 0 {
		c.InFlightPerDaemon = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.FailureLimit <= 0 {
		c.FailureLimit = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.MinStealCells <= 0 {
		c.MinStealCells = 4
	}
	if c.Clock == nil {
		c.Clock = SystemClock()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// DaemonStats is one daemon's share of a fleet run.
type DaemonStats struct {
	Endpoint    string        `json:"endpoint"`
	Dispatches  int           `json:"dispatches"`
	Cells       int           `json:"cells"`
	Failures    int           `json:"failures"`
	StolenFrom  int           `json:"stolen_from"`
	Quarantined bool          `json:"quarantined,omitempty"`
	Busy        time.Duration `json:"busy_ns"`
}

// Summary describes how a fleet run went: the merged result counters,
// the grid-wide metric summaries (folded in cell-index order via
// metrics.MergeAll, exactly as a local run would), and the distribution
// story — cells per daemon, retries, steals, and wall-clock against the
// perfect-balance ideal.
type Summary struct {
	Requested     int               `json:"requested"`
	Completed     int               `json:"completed"`
	Failed        int               `json:"failed"`
	ResultsDigest string            `json:"results_digest"`
	Metrics       []metrics.Summary `json:"metrics,omitempty"`
	Daemons       []DaemonStats     `json:"daemons"`
	Retries       int               `json:"retries"`
	Steals        int               `json:"steals"`
	// Resumed counts cells that were already durable in the store when
	// the run started; they were served from disk, never dispatched.
	Resumed int `json:"resumed,omitempty"`
	// MaxBufferedCells is the high-water mark of merged cell records
	// held in coordinator memory: the grid size without a store (every
	// record is buffered until the run completes), 0 with one (records
	// go to disk as they arrive).
	MaxBufferedCells int           `json:"max_buffered_cells"`
	Wall             time.Duration `json:"wall_ns"`
	// Ideal is the wall-clock a perfectly balanced fleet would need:
	// total busy time divided by daemon count. Wall/Ideal ≥ 1 measures
	// coordination overhead plus imbalance.
	Ideal time.Duration `json:"ideal_ns"`
}

// Result is a completed fleet run: every cell record of the grid in
// global index order, the digest over them, and the fleet summary.
// Records is nil when the run merged into a store (Config.Store) — the
// records are on disk, streamable via Store.Scan, and deliberately not
// loaded back: bounded coordinator memory is the point of store mode.
type Result struct {
	Records []harness.CellRecord
	Summary Summary
}

// shardItem is one unit of pending work: an index range plus how many
// times it has been dispatched and lost.
type shardItem struct {
	rng      harness.IndexRange
	attempts int
}

// task is one in-flight dispatch of a shard on a daemon. Without a
// store, received buffers the streamed records until the task settles;
// with one, records go straight to disk and only the appended count is
// kept.
type task struct {
	item     shardItem
	daemon   *daemonState
	runID    string
	stolen   bool // a thief has requested cancellation
	received []harness.CellRecord
	appended int // records persisted to the store by this task
}

// got counts the records this task has delivered so far. Caller holds
// co.mu.
func (t *task) got() int {
	if t.received != nil {
		return len(t.received)
	}
	return t.appended
}

// remaining estimates the victim's uncovered cells — what a steal would
// reclaim. Caller holds co.mu.
func (t *task) remaining() int { return t.item.rng.Count() - t.got() }

type daemonState struct {
	endpoint    string
	client      *client
	consecFails int
	quarantined bool
	stats       DaemonStats
}

type coordinator struct {
	cfg    Config
	parent *scenario.Scenario
	total  int
	st     *store.Store // nil without a store; records then buffer in committed

	mu          sync.Mutex
	cond        *sync.Cond
	pending     []shardItem
	running     map[*task]struct{}
	committed   map[int]harness.CellRecord
	healthy     int
	fatal       error
	done        bool
	retries     int
	steals      int
	maxBuffered int
}

// mergedLocked counts the cells merged so far — the committed map
// without a store, the store's coverage with one. Caller holds co.mu.
func (co *coordinator) mergedLocked() int {
	if co.st != nil {
		return co.st.Count()
	}
	return len(co.committed)
}

// Run executes sc's whole sweep grid across the fleet and returns the
// merged records. The returned records are complete (every grid cell,
// exactly once, in index order) or the error is non-nil — a fleet run
// never returns a partial result.
func Run(ctx context.Context, cfg Config, sc *scenario.Scenario) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("fleet: no endpoints")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Shard != nil {
		return nil, errors.New("fleet: scenario is already sharded; dispatch the unsharded parent")
	}
	total, err := sc.GridSize()
	if err != nil {
		return nil, err
	}

	co := &coordinator{
		cfg:     cfg,
		parent:  sc,
		total:   total,
		st:      cfg.Store,
		running: map[*task]struct{}{},
		healthy: len(cfg.Endpoints),
	}
	resumed := 0
	if co.st != nil {
		dig, err := sc.Digest()
		if err != nil {
			return nil, err
		}
		if got := co.st.Scenario(); got != dig {
			return nil, fmt.Errorf("fleet: store entry holds scenario %s, not %s", got, dig)
		}
		if sp := co.st.Span(); sp.Lo != 0 || sp.Hi != total {
			return nil, fmt.Errorf("fleet: store entry spans %v, scenario grid is [0,%d)", sp, total)
		}
		resumed = co.st.Count()
	} else {
		co.committed = make(map[int]harness.CellRecord, total)
	}
	co.cond = sync.NewCond(&co.mu)

	// Size-aware partitioning: shards balance total topology node count,
	// not cell count, so a few big-topology cells weigh as much as many
	// small ones. With a store, only the uncovered remainder is
	// partitioned at all — covered cells are already durable.
	weights, err := sc.CellWeights()
	if err != nil {
		return nil, err
	}
	owed := []harness.IndexRange{{Lo: 0, Hi: total}}
	if co.st != nil {
		owed = co.st.Uncovered()
	}
	for _, rng := range harness.PartitionRangesWeighted(owed, weights, len(cfg.Endpoints)*cfg.ShardsPerDaemon) {
		co.pending = append(co.pending, shardItem{rng: rng})
	}
	co.done = len(co.pending) == 0 && resumed == total
	if resumed > 0 {
		cfg.Logf("fleet: resuming: %d of %d cells already durable, %d to run in %d shards across %d daemons",
			resumed, total, total-resumed, len(co.pending), len(cfg.Endpoints))
	} else {
		cfg.Logf("fleet: %d cells in %d shards across %d daemons", total, len(co.pending), len(cfg.Endpoints))
	}

	start := cfg.Clock.Now()

	// Wake blocked workers if the caller's context dies.
	stopWake := context.AfterFunc(ctx, func() { co.cond.Broadcast() })
	defer stopWake()

	var wg sync.WaitGroup
	daemons := make([]*daemonState, len(cfg.Endpoints))
	for i, ep := range cfg.Endpoints {
		d := &daemonState{endpoint: ep, client: newClient(ep), stats: DaemonStats{Endpoint: ep}}
		daemons[i] = d
		for slot := 0; slot < cfg.InFlightPerDaemon; slot++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				co.worker(ctx, d)
			}()
		}
	}
	wg.Wait()

	co.mu.Lock()
	defer co.mu.Unlock()
	if co.st != nil {
		// Whatever happened, commit the store's view of the merge so a
		// failed or cancelled run resumes from everything that arrived.
		if serr := co.st.Sync(); serr == nil && co.fatal == nil && ctx.Err() == nil {
			// synced cleanly; fall through to the outcome checks
		} else if serr != nil && co.fatal == nil && ctx.Err() == nil {
			return nil, fmt.Errorf("fleet: store sync: %w", serr)
		}
	}
	if co.fatal != nil {
		return nil, co.fatal
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if merged := co.mergedLocked(); merged != co.total {
		return nil, fmt.Errorf("fleet: merged %d of %d cells", merged, co.total)
	}

	sum := Summary{
		Requested:        co.total,
		Retries:          co.retries,
		Steals:           co.steals,
		Resumed:          resumed,
		MaxBufferedCells: co.maxBuffered,
		Wall:             cfg.Clock.Now().Sub(start),
	}

	var recs []harness.CellRecord
	if co.st != nil {
		// Stream the merged records back off disk in index order: the
		// digest comes from a RecordsDigester over the stored bytes and
		// the metric fold happens record by record — O(1) cells in
		// memory, exactly like the append path.
		digest, err := co.st.Digest()
		if err != nil {
			return nil, fmt.Errorf("fleet: store digest: %w", err)
		}
		sum.ResultsDigest = digest
		agg := make(map[string]metrics.Summary)
		mergeable := true
		err = co.st.Scan(func(rec harness.CellRecord) error {
			if rec.Err != "" {
				sum.Failed++
				return nil
			}
			sum.Completed++
			if !mergeable {
				return nil
			}
			for _, ms := range rec.Metrics {
				prev, ok := agg[ms.Name]
				if !ok {
					agg[ms.Name] = ms
					continue
				}
				m, err := metrics.Merge(prev, ms)
				if err != nil {
					// Same policy as MergeAll failing below: drop the
					// aggregate, keep the run.
					mergeable = false
					return nil
				}
				agg[ms.Name] = m
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: store scan: %w", err)
		}
		if mergeable && len(agg) > 0 {
			sum.Metrics = metrics.Records(agg)
		}
		if err := co.st.SetRecordsDigest(digest); err != nil {
			return nil, fmt.Errorf("fleet: store digest commit: %w", err)
		}
	} else {
		recs = make([]harness.CellRecord, 0, co.total)
		for i := 0; i < co.total; i++ {
			rec, ok := co.committed[i]
			if !ok {
				return nil, fmt.Errorf("fleet: cell %d missing from the merge", i)
			}
			recs = append(recs, rec)
		}
		sum.ResultsDigest = harness.RecordsDigest(recs)
		var perCell []map[string]metrics.Summary
		for _, rec := range recs {
			if rec.Err != "" {
				sum.Failed++
				continue
			}
			sum.Completed++
			if len(rec.Metrics) > 0 {
				m := make(map[string]metrics.Summary, len(rec.Metrics))
				for _, s := range rec.Metrics {
					m[s.Name] = s
				}
				perCell = append(perCell, m)
			}
		}
		if merged, err := metrics.MergeAll(perCell); err == nil {
			sum.Metrics = metrics.Records(merged)
		}
	}

	var busy time.Duration
	for _, d := range daemons {
		d.stats.Quarantined = d.quarantined
		sum.Daemons = append(sum.Daemons, d.stats)
		busy += d.stats.Busy
	}
	sum.Ideal = busy / time.Duration(len(daemons))
	return &Result{Records: recs, Summary: sum}, nil
}

// VerifyLocal re-runs the scenario in-process and compares its records
// digest with the fleet digest — the end-to-end reproducibility gate. A
// mismatch is a hard error carrying both digests.
func VerifyLocal(ctx context.Context, sc *scenario.Scenario, fleetDigest string) error {
	agg, err := sc.Run(ctx)
	if err != nil {
		return fmt.Errorf("fleet: local verification run: %w", err)
	}
	if local := agg.Digest(); local != fleetDigest {
		return fmt.Errorf("fleet: digest divergence: fleet %s, local %s", fleetDigest, local)
	}
	return nil
}

// worker pulls shards (or steals them) and runs them on d until the run
// finishes, fails, or the daemon is quarantined.
func (co *coordinator) worker(ctx context.Context, d *daemonState) {
	for {
		t := co.next(ctx, d)
		if t == nil {
			return
		}
		co.runTask(ctx, d, t)
	}
}

// next blocks until there is a shard for d to run, stealing from the
// largest in-flight shard when the queue is empty, and returns nil when
// the coordinator is finished (done, fatal, cancelled) or d is
// quarantined.
func (co *coordinator) next(ctx context.Context, d *daemonState) *task {
	co.mu.Lock()
	defer co.mu.Unlock()
	for {
		if co.done || co.fatal != nil || ctx.Err() != nil || d.quarantined {
			return nil
		}
		if len(co.pending) > 0 {
			item := co.pending[0]
			co.pending = co.pending[1:]
			t := &task{item: item, daemon: d}
			co.running[t] = struct{}{}
			return t
		}
		if len(co.running) == 0 {
			// Nothing pending, nothing running, not done: cells were lost
			// without being re-enqueued — a coordinator bug, not a daemon
			// failure. Fail loudly rather than hang.
			co.fail(fmt.Errorf("fleet: %d of %d cells unaccounted for", co.total-co.mergedLocked(), co.total))
			return nil
		}
		if victim := co.stealVictimLocked(); victim != nil {
			victim.stolen = true
			co.steals++
			victim.daemon.stats.StolenFrom++
			co.cfg.Logf("fleet: %s idle, stealing %s from %s (%d cells uncovered)",
				d.endpoint, victim.item.rng, victim.daemon.endpoint, victim.remaining())
			// Cancel outside the lock; the victim's worker observes the
			// cancelled summary, commits what streamed, and re-enqueues the
			// remainder — which this worker then picks up normally.
			co.mu.Unlock()
			if err := victim.daemon.client.cancel(ctx, victim.runID); err != nil {
				co.cfg.Logf("fleet: cancelling %s on %s: %v (daemon failure will requeue it)",
					victim.item.rng, victim.daemon.endpoint, err)
			}
			co.mu.Lock()
			continue
		}
		co.cond.Wait()
	}
}

// stealVictimLocked picks the running task with the most uncovered cells,
// if splitting it is worthwhile. Caller holds co.mu.
func (co *coordinator) stealVictimLocked() *task {
	var victim *task
	for t := range co.running {
		if t.stolen || t.runID == "" {
			continue
		}
		if t.remaining() < 2*co.cfg.MinStealCells {
			continue
		}
		if victim == nil || t.remaining() > victim.remaining() ||
			(t.remaining() == victim.remaining() && t.item.rng.Lo < victim.item.rng.Lo) {
			victim = t
		}
	}
	return victim
}

// runTask dispatches one shard to d and settles the outcome: commit,
// commit-and-split (stolen), or discard-and-requeue (failed).
func (co *coordinator) runTask(ctx context.Context, d *daemonState, t *task) {
	// Serve any backoff the daemon has earned before burdening it again.
	co.mu.Lock()
	fails := d.consecFails
	co.mu.Unlock()
	if fails > 0 {
		if err := co.cfg.Clock.Sleep(ctx, co.backoff(fails)); err != nil {
			co.requeue(t, false, nil)
			return
		}
	}

	sub, err := co.parent.Slice(t.item.rng.Lo, t.item.rng.Count())
	if err != nil {
		co.failTask(t, err)
		return
	}
	body, err := sub.Marshal()
	if err != nil {
		co.failTask(t, err)
		return
	}

	start := co.cfg.Clock.Now()
	runID, cached, err := d.client.submit(ctx, body)
	if err != nil {
		var de *daemonError
		if errors.As(err, &de) && de.status >= 400 && de.status < 500 {
			// The daemon rejected the scenario itself; every daemon would.
			co.failTask(t, fmt.Errorf("fleet: %s rejected shard %s: %w", d.endpoint, t.item.rng, err))
			return
		}
		retryAfter := time.Duration(0)
		if errors.As(err, &de) {
			retryAfter = de.retryAfter
		}
		co.cfg.Logf("fleet: submit %s to %s: %v", t.item.rng, d.endpoint, err)
		co.daemonFailed(d)
		if retryAfter > 0 {
			_ = co.cfg.Clock.Sleep(ctx, retryAfter)
		}
		// No work lost: the shard re-enters the queue without consuming an
		// attempt.
		co.requeue(t, false, nil)
		return
	}

	if cached != nil {
		// The daemon had this shard's digest finished in cache and
		// answered with the complete report — commit it without streaming.
		co.mu.Lock()
		d.stats.Dispatches++
		co.mu.Unlock()
		if cached.Status != service.StatusDone {
			co.daemonFailed(d)
			co.requeue(t, true, nil)
			return
		}
		if co.st != nil {
			for _, rec := range cached.Cells {
				co.appendCell(t, rec)
			}
		} else {
			co.mu.Lock()
			t.received = cached.Cells
			co.mu.Unlock()
		}
		co.commitDone(d, t, co.cfg.Clock.Now().Sub(start))
		return
	}

	co.mu.Lock()
	t.runID = runID
	d.stats.Dispatches++
	co.mu.Unlock()

	rep, err := d.client.stream(ctx, runID, func(rec harness.CellRecord) {
		if co.st != nil {
			co.appendCell(t, rec)
			return
		}
		co.mu.Lock()
		t.received = append(t.received, rec)
		co.mu.Unlock()
	})
	elapsed := co.cfg.Clock.Now().Sub(start)
	if err != nil {
		// The stream broke before its summary: the daemon (or the network
		// to it) died mid-shard. Without a store everything received is
		// suspect — discard it all and redispatch the whole shard. With
		// one, each record was checksummed and validated on its way to
		// disk; the durable prefix stays and only the uncovered remainder
		// redispatches. Either way the loss consumes an attempt.
		co.cfg.Logf("fleet: stream %s from %s broke: %v", t.item.rng, d.endpoint, err)
		co.daemonFailed(d)
		if co.st != nil {
			co.requeueRemainder(t, true)
		} else {
			co.requeue(t, true, nil)
		}
		return
	}

	switch rep.Status {
	case service.StatusDone:
		co.commitDone(d, t, elapsed)
	case service.StatusCancelled:
		co.mu.Lock()
		stolen := t.stolen
		co.mu.Unlock()
		if stolen {
			co.commitStolen(d, t, elapsed)
			return
		}
		// Cancelled by the daemon's own lifecycle (drain, shutdown), not
		// by a thief: partial work we did not ask to stop. Discard (or,
		// with a store, keep what landed and redispatch the rest).
		co.cfg.Logf("fleet: %s cancelled shard %s unasked", d.endpoint, t.item.rng)
		co.daemonFailed(d)
		if co.st != nil {
			co.requeueRemainder(t, true)
		} else {
			co.requeue(t, true, nil)
		}
	default:
		co.daemonFailed(d)
		co.requeue(t, true, fmt.Errorf("fleet: %s finished shard %s in unexpected status %q", d.endpoint, t.item.rng, rep.Status))
	}
}

// appendCell streams one received record into the store (store mode
// only). Records carrying a context-cancellation error are scheduling
// artifacts — a cell interrupted mid-simulation, not a result — and are
// dropped so their indices stay uncovered and re-run. An append failure
// is fatal: the disk under the merge is gone or lying.
func (co *coordinator) appendCell(t *task, rec harness.CellRecord) {
	if strings.Contains(rec.Err, context.Canceled.Error()) {
		return
	}
	if err := co.st.Append(rec); err != nil {
		co.mu.Lock()
		co.fail(fmt.Errorf("fleet: store append cell %d of shard %s: %w", rec.Index, t.item.rng, err))
		co.mu.Unlock()
		return
	}
	co.mu.Lock()
	t.appended++
	co.mu.Unlock()
}

// requeueRemainder settles a partially delivered store-mode task:
// records that reached the store stay durable — the merge is append-only
// — and only the uncovered remainder returns to the queue. lostWork
// consumes one of the shard's attempts, exactly as requeue does; a fully
// delivered shard (the failure hit after its last record) settles
// without consuming one.
func (co *coordinator) requeueRemainder(t *task, lostWork bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	item := t.item
	rest := co.st.UncoveredIn(item.rng)
	if lostWork && len(rest) > 0 {
		item.attempts++
		co.retries++
		t.daemon.stats.Failures++
		if item.attempts >= co.cfg.MaxAttempts {
			co.failLocked(t, fmt.Errorf("fleet: shard %s failed %d times, giving up", item.rng, item.attempts))
			return
		}
	}
	for _, rng := range rest {
		co.pending = append(co.pending, shardItem{rng: rng, attempts: item.attempts})
	}
	co.settleLocked(t)
}

// commitDone merges a cleanly finished shard: exactly the shard's cells,
// each exactly once.
func (co *coordinator) commitDone(d *daemonState, t *task, elapsed time.Duration) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.st != nil {
		// The records are already durable; done just means the daemon
		// claims the shard is whole — hold it to that.
		if rest := co.st.UncoveredIn(t.item.rng); len(rest) > 0 {
			missing := 0
			for _, r := range rest {
				missing += r.Count()
			}
			co.failLocked(t, fmt.Errorf("fleet: %s finished shard %s but %d of its cells never arrived",
				d.endpoint, t.item.rng, missing))
			return
		}
		d.consecFails = 0
		d.stats.Cells += t.appended
		d.stats.Busy += elapsed
		co.settleLocked(t)
		return
	}
	if len(t.received) != t.item.rng.Count() {
		co.failLocked(t, fmt.Errorf("fleet: %s returned %d records for %d-cell shard %s",
			d.endpoint, len(t.received), t.item.rng.Count(), t.item.rng))
		return
	}
	if !co.commitLocked(t, t.received) {
		return
	}
	d.consecFails = 0
	d.stats.Cells += len(t.received)
	d.stats.Busy += elapsed
	co.settleLocked(t)
}

// commitStolen merges what a cancelled victim actually executed and
// re-enqueues the uncovered remainder. Records of cells that were
// interrupted mid-simulation carry a context-cancellation error — those
// are scheduling artifacts, not results, and return to the queue.
func (co *coordinator) commitStolen(d *daemonState, t *task, elapsed time.Duration) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.st != nil {
		// Clean records already streamed to disk (appendCell filters the
		// cancellation artifacts); re-enqueue the uncovered remainder,
		// splitting a single large one so thief and victim share it.
		d.consecFails = 0
		d.stats.Cells += t.appended
		d.stats.Busy += elapsed
		rest := co.st.UncoveredIn(t.item.rng)
		if len(rest) == 1 && rest[0].Count() >= 2*co.cfg.MinStealCells {
			mid := rest[0].Lo + rest[0].Count()/2
			rest = []harness.IndexRange{{Lo: rest[0].Lo, Hi: mid}, {Lo: mid, Hi: rest[0].Hi}}
		}
		for _, rng := range rest {
			co.pending = append(co.pending, shardItem{rng: rng, attempts: t.item.attempts})
		}
		co.cfg.Logf("fleet: shard %s stolen: %d cells kept, %d re-enqueued in %d pieces",
			t.item.rng, t.appended, t.item.rng.Count()-t.appended, len(rest))
		co.settleLocked(t)
		return
	}
	clean := make([]harness.CellRecord, 0, len(t.received))
	for _, rec := range t.received {
		if strings.Contains(rec.Err, context.Canceled.Error()) {
			continue
		}
		clean = append(clean, rec)
	}
	if !co.commitLocked(t, clean) {
		return
	}
	d.consecFails = 0
	d.stats.Cells += len(clean)
	d.stats.Busy += elapsed

	// Re-enqueue the uncovered sub-intervals; split a single large
	// remainder so the thief and this daemon can share it.
	rest := co.uncoveredLocked(t.item.rng)
	if len(rest) == 1 && rest[0].Count() >= 2*co.cfg.MinStealCells {
		mid := rest[0].Lo + rest[0].Count()/2
		rest = []harness.IndexRange{{Lo: rest[0].Lo, Hi: mid}, {Lo: mid, Hi: rest[0].Hi}}
	}
	for _, rng := range rest {
		co.pending = append(co.pending, shardItem{rng: rng, attempts: t.item.attempts})
	}
	co.cfg.Logf("fleet: shard %s stolen: %d cells kept, %d re-enqueued in %d pieces",
		t.item.rng, len(clean), t.item.rng.Count()-len(clean), len(rest))
	co.settleLocked(t)
}

// commitLocked merges records into the global cell map, failing the run
// on any duplicate or out-of-shard index — the structural guarantee that
// nothing is ever double-merged. Caller holds co.mu.
func (co *coordinator) commitLocked(t *task, recs []harness.CellRecord) bool {
	for _, rec := range recs {
		if rec.Index < t.item.rng.Lo || rec.Index >= t.item.rng.Hi {
			co.failLocked(t, fmt.Errorf("fleet: shard %s streamed out-of-range cell %d", t.item.rng, rec.Index))
			return false
		}
		if _, dup := co.committed[rec.Index]; dup {
			co.failLocked(t, fmt.Errorf("fleet: cell %d merged twice", rec.Index))
			return false
		}
	}
	for _, rec := range recs {
		co.committed[rec.Index] = rec
	}
	if len(co.committed) > co.maxBuffered {
		co.maxBuffered = len(co.committed)
	}
	return true
}

// uncoveredLocked lists the maximal sub-intervals of rng whose cells are
// not yet committed. Caller holds co.mu.
func (co *coordinator) uncoveredLocked(rng harness.IndexRange) []harness.IndexRange {
	var out []harness.IndexRange
	for i := rng.Lo; i < rng.Hi; i++ {
		if _, ok := co.committed[i]; ok {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Hi == i {
			out[n-1].Hi = i + 1
		} else {
			out = append(out, harness.IndexRange{Lo: i, Hi: i + 1})
		}
	}
	return out
}

// settleLocked removes a finished task and flips done when the grid is
// fully merged. Caller holds co.mu.
func (co *coordinator) settleLocked(t *task) {
	delete(co.running, t)
	if co.mergedLocked() == co.total {
		co.done = true
	}
	co.cond.Broadcast()
}

// requeue discards a task's received records and returns its whole range
// to the queue. lostWork consumes one of the shard's attempts; exceeding
// MaxAttempts (or a non-nil hard error) fails the run.
func (co *coordinator) requeue(t *task, lostWork bool, hard error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if hard != nil {
		co.failLocked(t, hard)
		return
	}
	item := t.item
	if lostWork {
		item.attempts++
		co.retries++
		t.daemon.stats.Failures++
		if item.attempts >= co.cfg.MaxAttempts {
			co.failLocked(t, fmt.Errorf("fleet: shard %s failed %d times, giving up", item.rng, item.attempts))
			return
		}
	}
	t.received = nil
	co.pending = append(co.pending, item)
	delete(co.running, t)
	co.cond.Broadcast()
}

// failTask fails the whole run on a non-recoverable task error.
func (co *coordinator) failTask(t *task, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.failLocked(t, err)
}

func (co *coordinator) failLocked(t *task, err error) {
	delete(co.running, t)
	co.fail(err)
}

// fail records the first fatal error and wakes everyone. Caller holds
// co.mu.
func (co *coordinator) fail(err error) {
	if co.fatal == nil {
		co.fatal = err
	}
	co.cond.Broadcast()
}

// daemonFailed bumps a daemon's consecutive-failure count, quarantining
// it at the limit. The last healthy daemon's quarantine fails the run.
func (co *coordinator) daemonFailed(d *daemonState) {
	co.mu.Lock()
	defer co.mu.Unlock()
	d.consecFails++
	if !d.quarantined && d.consecFails >= co.cfg.FailureLimit {
		d.quarantined = true
		co.healthy--
		co.cfg.Logf("fleet: quarantining %s after %d consecutive failures", d.endpoint, d.consecFails)
		if co.healthy == 0 && !co.done {
			co.fail(fmt.Errorf("fleet: no healthy daemons left (all %d quarantined)", len(co.cfg.Endpoints)))
		}
		co.cond.Broadcast()
	}
}

// backoff is the capped exponential schedule served after consecutive
// failures.
func (co *coordinator) backoff(fails int) time.Duration {
	d := co.cfg.BackoffBase
	for i := 1; i < fails; i++ {
		d *= 2
		if d >= co.cfg.BackoffMax {
			return co.cfg.BackoffMax
		}
	}
	if d > co.cfg.BackoffMax {
		d = co.cfg.BackoffMax
	}
	return d
}
