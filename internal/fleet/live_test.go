package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smallbuffers/internal/service"
)

// slowWindowScenario is a sweep slow enough to observe in flight, with
// the windowed collectors selected.
const slowWindowScenario = `{
	"name": "live-window",
	"topology": {"name": "path", "params": {"n": 16}},
	"protocol": {"name": "fleet-slow-fifo", "params": {"delay_us": 2000}},
	"adversary": {"name": "random", "params": {"d": 2}},
	"bound": {"rho": "1/2", "sigma": 2},
	"rounds": 60,
	"seeds": [1, 2, 3, 4, 5, 6],
	"metrics": [
		{"name": "window_load", "params": {"window": 16}},
		{"name": "goodput_window", "params": {"window": 16}}
	]
}`

func TestFleetLiveSnapshotMergesInFlightRuns(t *testing.T) {
	d1 := newDaemon(t, service.Config{Workers: 1, SweepWorkers: 2})
	d2 := newDaemon(t, service.Config{Workers: 1, SweepWorkers: 2})
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	cfg := Config{Endpoints: []string{
		d1.addr(), d2.addr(), strings.TrimPrefix(dead.URL, "http://"),
	}}

	// Distinct scenarios so the two daemons each run their own sweep.
	for i, d := range []*daemon{d1, d2} {
		body := strings.Replace(slowWindowScenario, `"live-window"`, `"live-window-`+string(rune('a'+i))+`"`, 1)
		resp, err := http.Post(d.ts.URL+"/v1/runs?wait=0", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit to daemon %d: %d", i, resp.StatusCode)
		}
	}

	ctx := context.Background()
	deadline := time.Now().Add(30 * time.Second)
	var snap *FleetLive
	for {
		var err error
		snap, err = LiveSnapshot(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := mergedMetric(snap, "window_load"); ok && snap.RunsInFlight == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no merged in-flight snapshot before deadline; last %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(snap.Daemons) != 3 {
		t.Fatalf("daemons = %d", len(snap.Daemons))
	}
	if snap.Daemons[2].Err == "" {
		t.Error("dead daemon's error not recorded")
	}
	// 6 seeds per daemon's sweep, two daemons.
	if snap.CellsTotal != 12 {
		t.Errorf("cells_total = %d, want 12", snap.CellsTotal)
	}
	if p := snap.Progress(); p < 0 || p > 1000 {
		t.Errorf("progress = %d", p)
	}
	gw, ok := mergedMetric(snap, "goodput_window")
	if !ok || gw.Scalars["window"] != 16 {
		t.Errorf("merged goodput_window %+v", gw)
	}

	// Once both runs finish, nothing is in flight and the aggregate is
	// empty again.
	waitIdle(t, cfg)
}

func mergedMetric(snap *FleetLive, name string) (s struct {
	Scalars map[string]int
}, ok bool) {
	for _, m := range snap.Metrics {
		if m.Name == name {
			return struct{ Scalars map[string]int }{m.Scalars}, true
		}
	}
	return s, false
}

func waitIdle(t *testing.T, cfg Config) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, err := LiveSnapshot(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if snap.RunsInFlight == 0 {
			if len(snap.Metrics) != 0 || snap.CellsTotal != 0 {
				t.Fatalf("idle snapshot still aggregates: %+v", snap)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("runs never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestLiveWatchPacedByClock pins that the poll loop draws its pacing
// from the injected Clock (nowallclock's contract for this package).
func TestLiveWatchPacedByClock(t *testing.T) {
	d := newDaemon(t, service.Config{})
	clk := &fakeClock{}
	cfg := Config{Endpoints: []string{d.addr()}, Clock: clk}
	polls := 0
	err := LiveWatch(context.Background(), cfg, time.Second, func(*FleetLive) bool {
		polls++
		return polls < 3
	})
	if err != nil || polls != 3 {
		t.Fatalf("polls=%d err=%v", polls, err)
	}
	if got := clk.Now().Sub(time.Time{}); got != 2*time.Second {
		t.Fatalf("clock advanced %v, want 2s of injected sleeps", got)
	}
}
