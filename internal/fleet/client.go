package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"smallbuffers/internal/harness"
	"smallbuffers/internal/service"
)

// daemonError is a structured failure from one daemon. Retryable mirrors
// the service's wire flag: true means back off and retry against the
// same daemon (queue saturation, drain), false means the request itself
// is doomed there (bad scenario, hard shutdown).
type daemonError struct {
	status     int
	msg        string
	retryable  bool
	retryAfter time.Duration
}

func (e *daemonError) Error() string {
	return fmt.Sprintf("daemon returned %d: %s", e.status, e.msg)
}

// decodeError turns a non-2xx response into a daemonError, honouring the
// service's structured JSON body and Retry-After header when present.
func decodeError(resp *http.Response) *daemonError {
	e := &daemonError{status: resp.StatusCode}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var wire struct {
		Error     string `json:"error"`
		Retryable bool   `json:"retryable"`
	}
	if json.Unmarshal(body, &wire) == nil && wire.Error != "" {
		e.msg, e.retryable = wire.Error, wire.Retryable
	} else {
		e.msg = strings.TrimSpace(string(body))
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		e.retryAfter = time.Duration(secs) * time.Second
	}
	return e
}

// client talks to one aqtserve daemon. It is stateless beyond the base
// URL; the coordinator owns health and backoff.
type client struct {
	base string // e.g. "http://host:port"
	http *http.Client
}

func newClient(endpoint string) *client {
	base := endpoint
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	// No overall request timeout: run streams are long-lived by design.
	// Cancellation flows through the request context.
	return &client{base: base, http: &http.Client{}}
}

// submit POSTs a scenario asynchronously. A 202 returns the daemon's
// run id to stream from; a 200 means the daemon already holds the
// finished run (digest cache hit) and returns its complete report
// instead — no stream needed.
func (c *client) submit(ctx context.Context, body []byte) (string, *service.Report, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/runs?wait=0", bytes.NewReader(body))
	if err != nil {
		return "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var rep service.Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			return "", nil, fmt.Errorf("decoding submit response: %w", err)
		}
		if rep.ID == "" {
			return "", nil, fmt.Errorf("submit response carries no run id")
		}
		return rep.ID, nil, nil
	case http.StatusOK:
		var rep service.Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			return "", nil, fmt.Errorf("decoding cached report: %w", err)
		}
		return "", &rep, nil
	default:
		return "", nil, decodeError(resp)
	}
}

// stream follows a run's NDJSON stream, invoking onCell for every cell
// record, and returns the closing summary report. An error means the
// stream broke before the summary — the caller must treat every cell it
// saw as suspect and discard.
func (c *client) stream(ctx context.Context, runID string, onCell func(harness.CellRecord)) (*service.Report, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+runID+"/stream", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("malformed stream frame: %w", err)
		}
		switch probe.Type {
		case "cell":
			var rec harness.CellRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("malformed cell frame: %w", err)
			}
			onCell(rec)
		case "summary":
			var rep service.Report
			if err := json.Unmarshal(line, &rep); err != nil {
				return nil, fmt.Errorf("malformed summary frame: %w", err)
			}
			return &rep, nil
		default:
			return nil, fmt.Errorf("unknown stream frame type %q", probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream broke: %w", err)
	}
	return nil, fmt.Errorf("stream ended without a summary")
}

// cancel DELETEs a run; used to reclaim a shard for work stealing.
func (c *client) cancel(ctx context.Context, runID string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/runs/"+runID, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// ready probes /readyz. A nil error means the daemon accepts new work.
func (c *client) ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
