package smallbuffers_test

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	sb "smallbuffers"
)

// TestFacadeSurface exercises every public constructor end to end so the
// facade cannot drift from the internals it wraps.
func TestFacadeSurface(t *testing.T) {
	t.Run("topologies", func(t *testing.T) {
		if _, err := sb.NewTree([]sb.NodeID{1, sb.None}); err != nil {
			t.Error(err)
		}
		if _, err := sb.NewForest([]sb.NodeID{sb.None, sb.None}); err != nil {
			t.Error(err)
		}
		if _, err := sb.RandomTree(10, rand.New(rand.NewSource(1))); err != nil {
			t.Error(err)
		}
		if _, err := sb.CaterpillarTree(3, 1); err != nil {
			t.Error(err)
		}
		if _, err := sb.BinaryTree(2); err != nil {
			t.Error(err)
		}
	})

	t.Run("protocol options", func(t *testing.T) {
		nw, err := sb.NewPath(16)
		if err != nil {
			t.Fatal(err)
		}
		bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 1}
		adv, err := sb.PPTSBurstAdversary(nw, bound, 3, 120)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sb.RunContext(context.Background(),
			sb.NewSpec(nw, sb.NewPPTS(sb.PPTSWithDrain()), adv, 120))
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxLoad > 1+3+1 {
			t.Errorf("MaxLoad %d", res.MaxLoad)
		}

		tree, err := sb.SpiderTree(2, 3)
		if err != nil {
			t.Fatal(err)
		}
		tadv, err := sb.TreeBurstAdversary(tree, bound, nil, 100)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sb.RunContext(context.Background(),
			sb.NewSpec(tree, sb.NewTreePTS(sb.TreePTSWithDrain()), tadv, 100)); err != nil {
			t.Fatal(err)
		}

		nw64, err := sb.NewPath(64)
		if err != nil {
			t.Fatal(err)
		}
		radv, err := sb.NewRandomAdversary(nw64, sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 1}, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sb.RunContext(context.Background(),
			sb.NewSpec(nw64, sb.NewHPTS(2, sb.HPTSAblatePreBad()), radv, 200)); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("local protocols", func(t *testing.T) {
		nw, err := sb.NewPath(8)
		if err != nil {
			t.Fatal(err)
		}
		bound := sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 1}
		for _, p := range []sb.Protocol{sb.NewDownhill(), sb.NewOddEvenDownhill()} {
			res, err := sb.RunContext(context.Background(),
				sb.NewSpec(nw, p, sb.NewStream(bound, 0, 7), 200))
			if err != nil {
				t.Fatal(err)
			}
			if res.Delivered == 0 {
				t.Errorf("%s delivered nothing", p.Name())
			}
		}
	})

	t.Run("adversaries", func(t *testing.T) {
		nw, err := sb.NewPath(16)
		if err != nil {
			t.Fatal(err)
		}
		bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}
		hot, err := sb.NewHotSpotAdversary(nw, bound, []sb.NodeID{15}, 1)
		if err != nil {
			t.Fatal(err)
		}
		cons := sb.NewConservationCheck()
		if _, err := sb.RunContext(context.Background(),
			sb.NewSpec(nw, sb.NewPTS(), hot, 150, sb.WithObservers(cons))); err != nil {
			t.Fatal(err)
		}
		if cons.Err != nil {
			t.Error(cons.Err)
		}

		rr := sb.NewRoundRobin(bound, 0, []sb.NodeID{10, 12, 15})
		if err := sb.VerifyAdversary(nw, rr, 60); err != nil {
			t.Error(err)
		}
		delayed := sb.NewDelayed(sb.NewStream(bound, 0, 15), 5)
		if err := sb.VerifyAdversary(nw, delayed, 60); err != nil {
			t.Error(err)
		}
		gk, err := sb.GreedyKillerAdversary(nw, bound, 4, 120)
		if err != nil {
			t.Fatal(err)
		}
		if err := sb.VerifyAdversary(nw, gk, 120); err != nil {
			t.Error(err)
		}
	})

	t.Run("scenarios and registry", func(t *testing.T) {
		if len(sb.RegisteredProtocols()) < 10 || len(sb.RegisteredTopologies()) < 4 ||
			len(sb.RegisteredAdversaries()) < 7 || len(sb.RegisteredInvariants()) < 1 {
			t.Errorf("registry enumeration too small: %v / %v / %v / %v",
				sb.RegisteredProtocols(), sb.RegisteredTopologies(),
				sb.RegisteredAdversaries(), sb.RegisteredInvariants())
		}
		sc, err := sb.ParseScenario([]byte(`{
			"topology": {"name": "path", "params": {"n": 16}},
			"protocol": {"name": "ppts"},
			"adversary": {"name": "random", "params": {"d": 2}},
			"bound": {"rho": "1/2", "sigma": 2},
			"rounds": 50
		}`))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Marshal(); err != nil {
			t.Fatal(err)
		}
		agg, err := sc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if agg.Completed != 1 {
			t.Errorf("scenario run: %+v (first err: %v)", agg, agg.FirstErr())
		}

		// The extension hooks: a custom protocol registered under a new name
		// is immediately constructible from scenario JSON.
		err = sb.RegisterProtocol(sb.RegistryProtocol{
			Name: "facade-test-greedy",
			Doc:  "registered through the facade in a test",
			Build: func(sb.RegistryParams) (sb.Protocol, error) {
				return sb.NewGreedy(sb.FIFO), nil
			},
		})
		// The registry is process-global: under -count>1 the name survives
		// from the previous run, which is fine for this test.
		if err != nil && !strings.Contains(err.Error(), "duplicate") {
			t.Fatal(err)
		}
		sc2, err := sb.ParseScenario([]byte(`{
			"topology": {"name": "path", "params": {"n": 8}},
			"protocol": {"name": "facade-test-greedy"},
			"adversary": {"name": "stream"},
			"bound": {"rho": "1/2", "sigma": 1},
			"rounds": 20
		}`))
		if err != nil {
			t.Fatal(err)
		}
		agg2, err := sc2.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if agg2.Completed != 1 {
			t.Errorf("custom-protocol scenario: %+v (first err: %v)", agg2, agg2.FirstErr())
		}
	})

	t.Run("metrics", func(t *testing.T) {
		if got := sb.RegisteredMetrics(); len(got) < 5 {
			t.Errorf("RegisteredMetrics = %v, want the 5 built-ins", got)
		}
		hist, err := sb.NewMetric("load_hist", nil)
		if err != nil {
			t.Fatal(err)
		}
		series, err := sb.NewMetric("load_series", map[string]any{"cap": 16, "tail": 4})
		if err != nil {
			t.Fatal(err)
		}
		nw, err := sb.NewPath(8)
		if err != nil {
			t.Fatal(err)
		}
		adv, err := sb.NewRandomAdversary(nw, sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 1}, nil, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sb.RunContext(context.Background(),
			sb.NewSpec(nw, sb.NewPPTS(), adv, 60, sb.WithMetrics(hist, series)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Metrics) != 2 {
			t.Fatalf("Result.Metrics = %v", res.Metrics)
		}
		ls := res.Metrics["load_series"]
		if s, ok := ls.SeriesByKey("max"); !ok || s.Rounds != 60 {
			t.Errorf("load_series summary: %+v", ls)
		}
		merged, err := sb.MergeMetricSummaries([]map[string]sb.MetricSummary{res.Metrics, res.Metrics})
		if err != nil {
			t.Fatal(err)
		}
		if merged["load_hist"].Hist == nil || merged["load_hist"].Hist.Count != 2*res.Metrics["load_hist"].Hist.Count {
			t.Errorf("merged load_hist: %+v", merged["load_hist"])
		}
		var buf bytes.Buffer
		if err := sb.RenderHistogram(&buf, "t", res.Metrics["load_hist"].Hist.Bars(), 20); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Error("empty histogram rendering")
		}

		// A custom collector registered through the facade is immediately
		// selectable from scenario JSON.
		err = sb.RegisterMetric(sb.RegistryMetric{
			Name: "facade-test-rounds",
			Doc:  "registered through the facade in a test",
			Build: func(sb.RegistryParams) (sb.MetricCollector, error) {
				return &roundCounter{}, nil
			},
		})
		if err != nil && !strings.Contains(err.Error(), "duplicate") {
			t.Fatal(err)
		}
		sc, err := sb.ParseScenario([]byte(`{
			"topology": {"name": "path", "params": {"n": 8}},
			"protocol": {"name": "ppts"},
			"adversary": {"name": "stream"},
			"bound": {"rho": "1/2", "sigma": 1},
			"rounds": 25,
			"metrics": [{"name": "facade-test-rounds"}]
		}`))
		if err != nil {
			t.Fatal(err)
		}
		agg, err := sc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if agg.Completed != 1 {
			t.Fatalf("custom-metric scenario: %+v (first err: %v)", agg, agg.FirstErr())
		}
		got := agg.Cells[0].Result.Metrics["facade-test-rounds"]
		if got.Scalar("rounds") != 25 {
			t.Errorf("custom collector summary = %+v, want rounds=25", got)
		}
	})

	t.Run("rendering", func(t *testing.T) {
		var buf bytes.Buffer
		if err := sb.RenderSparkline(&buf, []int{1, 3, 2, 5}, 20); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Error("empty sparkline")
		}
		buf.Reset()
		if err := sb.RenderSeries(&buf, "forwards", []int{0, 2, 1}, 20); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "forwards") {
			t.Errorf("series rendering lacks its label: %q", buf.String())
		}
	})
}

// roundCounter is a minimal custom collector exercising the extension
// hook: it counts rounds through the facade-exported hook types.
type roundCounter struct {
	sb.MetricNopCollector
	rounds int
}

func (c *roundCounter) Name() string                  { return "facade-test-rounds" }
func (c *roundCounter) OnRoundEnd(int, sb.MetricView) { c.rounds++ }
func (c *roundCounter) Summarize() sb.MetricSummary {
	return sb.MetricSummary{Name: "facade-test-rounds", Kind: "scalar",
		Scalars: map[string]int{"rounds": c.rounds}}
}
