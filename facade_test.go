package smallbuffers_test

import (
	"bytes"
	"math/rand"
	"testing"

	sb "smallbuffers"
)

// TestFacadeSurface exercises every public constructor end to end so the
// facade cannot drift from the internals it wraps.
func TestFacadeSurface(t *testing.T) {
	t.Run("topologies", func(t *testing.T) {
		if _, err := sb.NewTree([]sb.NodeID{1, sb.None}); err != nil {
			t.Error(err)
		}
		if _, err := sb.NewForest([]sb.NodeID{sb.None, sb.None}); err != nil {
			t.Error(err)
		}
		if _, err := sb.RandomTree(10, rand.New(rand.NewSource(1))); err != nil {
			t.Error(err)
		}
		if _, err := sb.CaterpillarTree(3, 1); err != nil {
			t.Error(err)
		}
		if _, err := sb.BinaryTree(2); err != nil {
			t.Error(err)
		}
	})

	t.Run("protocol options", func(t *testing.T) {
		nw, err := sb.NewPath(16)
		if err != nil {
			t.Fatal(err)
		}
		bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 1}
		adv, err := sb.PPTSBurstAdversary(nw, bound, 3, 120)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sb.Run(sb.Config{
			Net: nw, Protocol: sb.NewPPTS(sb.PPTSWithDrain()), Adversary: adv, Rounds: 120,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxLoad > 1+3+1 {
			t.Errorf("MaxLoad %d", res.MaxLoad)
		}

		tree, err := sb.SpiderTree(2, 3)
		if err != nil {
			t.Fatal(err)
		}
		tadv, err := sb.TreeBurstAdversary(tree, bound, nil, 100)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sb.Run(sb.Config{
			Net: tree, Protocol: sb.NewTreePTS(sb.TreePTSWithDrain()), Adversary: tadv, Rounds: 100,
		}); err != nil {
			t.Fatal(err)
		}

		nw64, err := sb.NewPath(64)
		if err != nil {
			t.Fatal(err)
		}
		radv, err := sb.NewRandomAdversary(nw64, sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 1}, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sb.Run(sb.Config{
			Net: nw64, Protocol: sb.NewHPTS(2, sb.HPTSAblatePreBad()), Adversary: radv, Rounds: 200,
		}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("local protocols", func(t *testing.T) {
		nw, err := sb.NewPath(8)
		if err != nil {
			t.Fatal(err)
		}
		bound := sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 1}
		for _, p := range []sb.Protocol{sb.NewDownhill(), sb.NewOddEvenDownhill()} {
			res, err := sb.Run(sb.Config{
				Net: nw, Protocol: p, Adversary: sb.NewStream(bound, 0, 7), Rounds: 200,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Delivered == 0 {
				t.Errorf("%s delivered nothing", p.Name())
			}
		}
	})

	t.Run("adversaries", func(t *testing.T) {
		nw, err := sb.NewPath(16)
		if err != nil {
			t.Fatal(err)
		}
		bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}
		hot, err := sb.NewHotSpotAdversary(nw, bound, []sb.NodeID{15}, 1)
		if err != nil {
			t.Fatal(err)
		}
		cons := sb.NewConservationCheck()
		if _, err := sb.Run(sb.Config{
			Net: nw, Protocol: sb.NewPTS(), Adversary: hot, Rounds: 150,
			Observers: []sb.Observer{cons},
		}); err != nil {
			t.Fatal(err)
		}
		if cons.Err != nil {
			t.Error(cons.Err)
		}

		rr := sb.NewRoundRobin(bound, 0, []sb.NodeID{10, 12, 15})
		if err := sb.VerifyAdversary(nw, rr, 60); err != nil {
			t.Error(err)
		}
		delayed := sb.NewDelayed(sb.NewStream(bound, 0, 15), 5)
		if err := sb.VerifyAdversary(nw, delayed, 60); err != nil {
			t.Error(err)
		}
		gk, err := sb.GreedyKillerAdversary(nw, bound, 4, 120)
		if err != nil {
			t.Fatal(err)
		}
		if err := sb.VerifyAdversary(nw, gk, 120); err != nil {
			t.Error(err)
		}
	})

	t.Run("rendering", func(t *testing.T) {
		var buf bytes.Buffer
		if err := sb.RenderSparkline(&buf, []int{1, 3, 2, 5}, 20); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Error("empty sparkline")
		}
	})
}
