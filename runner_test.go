package smallbuffers_test

// Facade-level coverage of the two-tier execution API: the deprecated
// Run(Config) shim must match RunContext(NewSpec(...)) exactly, and the
// Sweep layer must be drivable entirely through the re-exports.

import (
	"context"
	"reflect"
	"testing"

	sb "smallbuffers"
)

func fixedScenario(t *testing.T) (*sb.Network, sb.Adversary) {
	t.Helper()
	nw, err := sb.NewPath(48)
	if err != nil {
		t.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}
	adv, err := sb.NewRandomAdversary(nw, bound, []sb.NodeID{30, 40, 47}, 17)
	if err != nil {
		t.Fatal(err)
	}
	return nw, adv
}

// The Run(Config) compatibility shim and the RunContext path must produce
// identical results for a fixed scenario.
func TestRunShimMatchesRunContext(t *testing.T) {
	nw, adv := fixedScenario(t)
	old, err := sb.Run(sb.Config{
		Net: nw, Protocol: sb.NewPPTS(), Adversary: adv, Rounds: 500,
		VerifyAdversary: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, adv2 := fixedScenario(t)
	neu, err := sb.RunContext(context.Background(),
		sb.NewSpec(nw, sb.NewPPTS(), adv2, 500, sb.WithVerifyAdversary()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, neu) {
		t.Errorf("shim and RunContext diverged:\n%+v\n%+v", old, neu)
	}
}

// The facade engine supports Step/Reset-driven reuse.
func TestFacadeEngineStepReset(t *testing.T) {
	nw, adv := fixedScenario(t)
	eng, err := sb.NewEngine(sb.NewSpec(nw, sb.NewPPTS(), adv, 100))
	if err != nil {
		t.Fatal(err)
	}
	for {
		done, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	stepped := eng.Result()
	_, adv2 := fixedScenario(t)
	if err := eng.Reset(sb.NewSpec(nw, sb.NewPPTS(), adv2, 100)); err != nil {
		t.Fatal(err)
	}
	rerun, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stepped, rerun) {
		t.Errorf("stepped and reused runs diverged:\n%+v\n%+v", stepped, rerun)
	}
}

// A facade-built sweep runs end to end and is reproducible.
func TestFacadeSweep(t *testing.T) {
	mk := func() *sb.Sweep {
		return &sb.Sweep{
			Protocols: []sb.SweepProtocol{
				sb.NewSweepProtocol("PPTS", func() sb.Protocol { return sb.NewPPTS() }),
				sb.NewSweepProtocol("Greedy-LIS", func() sb.Protocol { return sb.NewGreedy(sb.LIS) }),
			},
			Topologies:  []sb.SweepTopology{sb.SweepPath(32), sb.SweepPath(64)},
			Bounds:      []sb.Bound{{Rho: sb.NewRat(1, 1), Sigma: 1}},
			Adversaries: []sb.SweepAdversary{sb.SweepRandomAdversary(nil)},
			Seeds:       []int64{1, 2},
			Rounds:      []int{300},
			BaseSeed:    7,
		}
	}
	a, err := mk().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != 8 || a.Failed != 0 {
		t.Fatalf("completed %d/8 (first err %v)", a.Completed, a.FirstErr())
	}
	b, err := mk().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if !reflect.DeepEqual(a.Cells[i].Result, b.Cells[i].Result) {
			t.Errorf("cell %v not reproducible", a.Cells[i].Cell)
		}
	}
	if a.MaxLoad.Count != 8 || a.Delivered.Count != 8 {
		t.Errorf("summaries not folded: %+v", a.MaxLoad)
	}
}
