package smallbuffers_test

// Compile-checked documentation examples for the public API. Each example
// is a self-contained snippet of the kind a user would write; outputs are
// deterministic, so `go test` verifies them.

import (
	"context"
	"fmt"

	sb "smallbuffers"
)

// ExampleRun simulates PPTS against a crafted worst case and checks the
// Proposition 3.2 bound.
func ExampleRun() {
	nw, err := sb.NewPath(32)
	if err != nil {
		panic(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}
	adv, err := sb.PPTSBurstAdversary(nw, bound, 4, 256) // d = 4 destinations
	if err != nil {
		panic(err)
	}
	res, err := sb.RunContext(context.Background(), sb.NewSpec(nw, sb.NewPPTS(), adv, 256))
	if err != nil {
		panic(err)
	}
	fmt.Printf("max load %d ≤ 1+d+σ = %d: %v\n", res.MaxLoad, 1+4+2, res.MaxLoad <= 7)
	// Output: max load 7 ≤ 1+d+σ = 7: true
}

// ExampleNewHierarchy walks the Figure 1 virtual trajectory.
func ExampleNewHierarchy() {
	h, err := sb.NewHierarchy(2, 4) // n = 16, the paper's Figure 1
	if err != nil {
		panic(err)
	}
	for _, seg := range h.Segments(0, 13) {
		fmt.Printf("level %d: %d → %d\n", seg.Level, seg.From, seg.To)
	}
	// Output:
	// level 3: 0 → 8
	// level 2: 8 → 12
	// level 0: 12 → 13
}

// ExampleNewLowerBoundAdversary shows the Theorem 5.1 pattern geometry.
func ExampleNewLowerBoundAdversary() {
	lb, err := sb.NewLowerBoundAdversary(4, 2, sb.NewRat(3, 4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("buffers %d, rounds %d, floor %v\n", lb.N(), lb.Rounds(), lb.PredictedBound())
	fmt.Printf("F(0) = %d, F moves left: F(last) = %d\n", lb.F(0), lb.F(lb.Rounds()-1))
	// Output:
	// buffers 48, rounds 64, floor 5/4
	// F(0) = 47, F moves left: F(last) = 20
}

// ExampleNewSchedule builds and verifies an explicit injection pattern.
func ExampleNewSchedule() {
	nw, err := sb.NewPath(8)
	if err != nil {
		panic(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 1}
	adv := sb.NewSchedule().
		At(0, 0, 7).     // round 0: inject 0 → 7
		AtN(3, 2, 2, 7). // round 3: two packets 2 → 7
		Build(bound)
	err = sb.VerifyAdversary(nw, adv, 10)
	fmt.Println("within (1,1):", err == nil)
	// Output: within (1,1): true
}

// ExampleNewUnion composes edge-disjoint sources with a tight bound.
func ExampleNewUnion() {
	nw, err := sb.NewPath(9)
	if err != nil {
		panic(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 1}
	left, err := sb.NewOnOff(bound, 0, 4)
	if err != nil {
		panic(err)
	}
	right, err := sb.NewOnOff(bound, 4, 8)
	if err != nil {
		panic(err)
	}
	u := sb.NewUnion(left, right).WithUnionBound(bound) // routes are disjoint
	err = sb.VerifyAdversary(nw, u, 100)
	fmt.Println("tight union bound holds:", err == nil)
	// Output: tight union bound holds: true
}
