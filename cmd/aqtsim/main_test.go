package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(context.Background(), args, &buf)
	return buf.String(), err
}

func TestDefaultRun(t *testing.T) {
	out, err := runCLI(t, "-rounds", "200")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"protocol:   PPTS", "max load:", "Proposition 3.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestProtocols(t *testing.T) {
	cases := [][]string{
		{"-protocol", "pts", "-adversary", "stream", "-d", "1", "-rounds", "100"},
		{"-protocol", "pts", "-drain", "-adversary", "stream", "-d", "1", "-rounds", "100"},
		{"-protocol", "hpts", "-ell", "2", "-rho", "1/2", "-rounds", "200"},
		{"-protocol", "greedy-fifo", "-rounds", "100"},
		{"-protocol", "greedy-ntg", "-rounds", "100"},
		{"-topology", "spider", "-protocol", "tree-ppts", "-rounds", "100"},
		{"-topology", "binary", "-protocol", "tree-pts", "-adversary", "stream", "-d", "1", "-rounds", "100"},
		{"-topology", "caterpillar", "-protocol", "greedy-lis", "-rounds", "100"},
		{"-adversary", "burst", "-d", "4", "-rounds", "150"},
		{"-adversary", "roundrobin", "-rounds", "100"},
		{"-adversary", "greedykiller", "-d", "4", "-rounds", "150"},
		{"-adversary", "lowerbound", "-m", "4", "-ell", "2", "-rho", "1/2"},
		{"-protocol", "ppts", "-heatmap", "-rounds", "80"},
		{"-adversary", "hotspot", "-rounds", "150"},
		{"-protocol", "downhill", "-adversary", "stream", "-d", "1", "-rounds", "150"},
		{"-protocol", "oddeven", "-adversary", "stream", "-d", "1", "-rho", "1/2", "-rounds", "150"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			out, err := runCLI(t, args...)
			if err != nil {
				t.Fatalf("%v: %v", args, err)
			}
			if !strings.Contains(out, "max load:") {
				t.Errorf("missing summary:\n%s", out)
			}
		})
	}
}

func TestJSONOutput(t *testing.T) {
	out, err := runCLI(t, "-json", "-rounds", "50")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "\"loads\"") {
		t.Errorf("not JSON:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-protocol", "bogus"},
		{"-adversary", "bogus"},
		{"-topology", "bogus"},
		{"-rho", "not-a-rat"},
		{"-protocol", "greedy-bogus"},
		{"-protocol", "hpts", "-ell", "3", "-n", "10"},          // 10 is not m³
		{"-protocol", "pts", "-adversary", "random", "-d", "3"}, // PTS with 3 dests
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if _, err := runCLI(t, args...); err == nil {
				t.Errorf("%v succeeded, want error", args)
			}
		})
	}
}

func TestVerifyFlagCatchesNothingOnGoodPatterns(t *testing.T) {
	if _, err := runCLI(t, "-verify=true", "-rounds", "150"); err != nil {
		t.Fatal(err)
	}
}
