package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	sb "smallbuffers"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(context.Background(), args, &buf)
	return buf.String(), err
}

func TestDefaultRun(t *testing.T) {
	out, err := runCLI(t, "-rounds", "200")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"protocol:   PPTS", "max load:", "Proposition 3.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestProtocols(t *testing.T) {
	cases := [][]string{
		{"-protocol", "pts", "-adversary", "stream", "-d", "1", "-rounds", "100"},
		{"-protocol", "pts", "-drain", "-adversary", "stream", "-d", "1", "-rounds", "100"},
		{"-protocol", "hpts", "-ell", "2", "-rho", "1/2", "-rounds", "200"},
		{"-protocol", "greedy-fifo", "-rounds", "100"},
		{"-protocol", "greedy-ntg", "-rounds", "100"},
		{"-topology", "spider", "-protocol", "tree-ppts", "-rounds", "100"},
		{"-topology", "binary", "-protocol", "tree-pts", "-adversary", "stream", "-d", "1", "-rounds", "100"},
		{"-topology", "caterpillar", "-protocol", "greedy-lis", "-rounds", "100"},
		{"-adversary", "burst", "-d", "4", "-rounds", "150"},
		{"-adversary", "roundrobin", "-rounds", "100"},
		{"-adversary", "greedykiller", "-d", "4", "-rounds", "150"},
		{"-adversary", "lowerbound", "-m", "4", "-ell", "2", "-rho", "1/2"},
		{"-protocol", "ppts", "-heatmap", "-rounds", "80"},
		{"-adversary", "hotspot", "-rounds", "150"},
		{"-protocol", "downhill", "-adversary", "stream", "-d", "1", "-rounds", "150"},
		{"-protocol", "oddeven", "-adversary", "stream", "-d", "1", "-rho", "1/2", "-rounds", "150"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			out, err := runCLI(t, args...)
			if err != nil {
				t.Fatalf("%v: %v", args, err)
			}
			if !strings.Contains(out, "max load:") {
				t.Errorf("missing summary:\n%s", out)
			}
		})
	}
}

func TestMetricsFlag(t *testing.T) {
	out, err := runCLI(t, "-rounds", "200", "-metrics", "load_series,load_hist,latency")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"metric latency (hist)", "p50=", "p99=",
		"metric load_hist (hist)",
		"metric load_series (series)", "stride",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The metric set is part of the workload: it shows in the canonical
	// dump and changes the scenario digest.
	dump, err := runCLI(t, "-rounds", "200", "-metrics", "latency", "-dump-scenario")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump, `"metrics"`) || !strings.Contains(dump, `"latency"`) {
		t.Errorf("dump lacks the metrics axis:\n%s", dump)
	}
	plain, err := runCLI(t, "-rounds", "200", "-digest")
	if err != nil {
		t.Fatal(err)
	}
	withMetrics, err := runCLI(t, "-rounds", "200", "-metrics", "latency", "-digest")
	if err != nil {
		t.Fatal(err)
	}
	if plain == withMetrics {
		t.Error("scenario digest blind to the metrics axis")
	}

	if _, err := runCLI(t, "-rounds", "50", "-metrics", "nope"); err == nil || !strings.Contains(err.Error(), "unknown metric") {
		t.Errorf("unknown metric error = %v", err)
	}
	if _, err := runCLI(t, "-scenario", "testdata-nonexistent.json", "-metrics", "latency"); err == nil || !strings.Contains(err.Error(), "-metrics") {
		t.Errorf("-scenario plus -metrics should conflict, got %v", err)
	}
}

func TestJSONOutput(t *testing.T) {
	out, err := runCLI(t, "-json", "-rounds", "50")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "\"loads\"") {
		t.Errorf("not JSON:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-protocol", "bogus"},
		{"-adversary", "bogus"},
		{"-topology", "bogus"},
		{"-rho", "not-a-rat"},
		{"-protocol", "greedy-bogus"},
		{"-protocol", "hpts", "-ell", "3", "-n", "10"},          // 10 is not m³
		{"-protocol", "pts", "-adversary", "random", "-d", "3"}, // PTS with 3 dests
		{"-bandwidth", "0"},
		{"-bandwidth", "-3"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if _, err := runCLI(t, args...); err == nil {
				t.Errorf("%v succeeded, want error", args)
			}
		})
	}
}

func TestVerifyFlagCatchesNothingOnGoodPatterns(t *testing.T) {
	if _, err := runCLI(t, "-verify=true", "-rounds", "150"); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioReproducesFlags is the digest gate: for each flag
// invocation, -dump-scenario followed by -scenario must replay the exact
// same run, compared on results digests (sha256 over the per-cell
// records) rather than raw output bytes.
func TestScenarioReproducesFlags(t *testing.T) {
	cases := [][]string{
		{"-rounds", "150"},
		{"-protocol", "pts", "-adversary", "stream", "-d", "1", "-rounds", "100"},
		{"-protocol", "hpts", "-ell", "2", "-rho", "1/2", "-rounds", "150"},
		{"-protocol", "greedy-ntg", "-adversary", "greedykiller", "-d", "4", "-rounds", "150"},
		{"-topology", "spider", "-protocol", "tree-ppts", "-rounds", "100"},
		{"-adversary", "lowerbound", "-m", "4", "-ell", "2", "-rho", "3/4"},
		{"-adversary", "hotspot", "-seed", "9", "-rounds", "120"},
		{"-bandwidth", "4", "-rho", "2", "-rounds", "120"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			direct, err := runCLI(t, append(args, "-result-digest")...)
			if err != nil {
				t.Fatal(err)
			}
			dump, err := runCLI(t, append(args, "-dump-scenario")...)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "s.json")
			if err := os.WriteFile(path, []byte(dump), 0o600); err != nil {
				t.Fatal(err)
			}
			viaFile, err := runCLI(t, "-scenario", path, "-result-digest")
			if err != nil {
				t.Fatal(err)
			}
			if direct != viaFile {
				t.Errorf("flag run and scenario run diverge:\n--- flags\n%s--- scenario\n%s", direct, viaFile)
			}
			if !strings.HasPrefix(direct, "sha256:") {
				t.Errorf("result digest %q lacks the sha256: prefix", direct)
			}
		})
	}
}

// TestDumpScenarioDigestFixedPoint gates the dump/load round trip on
// canonical digests: a dumped scenario re-loaded (from a file or a pipe)
// digests identically, and -digest agrees with an independent
// Digest() computation over the dumped bytes.
func TestDumpScenarioDigestFixedPoint(t *testing.T) {
	first, err := runCLI(t, "-rounds", "200", "-digest")
	if err != nil {
		t.Fatal(err)
	}
	dump, err := runCLI(t, "-rounds", "200", "-dump-scenario")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(path, []byte(dump), 0o600); err != nil {
		t.Fatal(err)
	}
	second, err := runCLI(t, "-scenario", path, "-digest")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("digest not a dump/load fixed point:\n--- flags\n%s--- reloaded\n%s", first, second)
	}
	sc, err := sb.ParseScenario([]byte(dump))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(first) != want {
		t.Errorf("-digest prints %q, library computes %q", strings.TrimSpace(first), want)
	}
}

func TestScenarioSweepReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	src := `{
		"topology": {"name": "path", "params": {"n": 16}},
		"protocols": [{"name": "ppts"}, {"name": "greedy-fifo"}],
		"adversary": {"name": "random", "params": {"d": 2}},
		"bound": {"rho": "1/2", "sigma": 2},
		"rounds": 100,
		"seeds": [1, 2]
	}`
	if err := os.WriteFile(path, []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-scenario", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cells:      4 completed", "max load:", "greedy-fifo"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep report missing %q:\n%s", want, out)
		}
	}
	// Trace output needs a single run.
	if _, err := runCLI(t, "-scenario", path, "-json"); err == nil {
		t.Error("-json on a sweep grid must fail")
	}
}

func TestScenarioErrors(t *testing.T) {
	if _, err := runCLI(t, "-scenario", "/nonexistent/s.json"); err == nil {
		t.Error("missing scenario file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	bad := `{
		"topology": {"name": "path"}, "protocol": {"name": "ptss"},
		"adversary": {"name": "stream"}, "bound": {"rho": "1", "sigma": 1}, "rounds": 10
	}`
	if err := os.WriteFile(path, []byte(bad), 0o600); err != nil {
		t.Fatal(err)
	}
	_, err := runCLI(t, "-scenario", path)
	if err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Errorf("want a did-you-mean error, got %v", err)
	}
}

// Workload flags alongside -scenario would be silently overridden by the
// file; the CLI rejects the combination (output flags still compose).
func TestScenarioRejectsConflictingWorkloadFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	dump, err := runCLI(t, "-rounds", "50", "-dump-scenario")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(dump), 0o600); err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]string{
		{"-rho", "2"},
		{"-rounds", "7"},
		{"-protocol", "pts"},
		{"-seed", "9"},
	} {
		args := append([]string{"-scenario", path}, extra...)
		_, err := runCLI(t, args...)
		if err == nil || !strings.Contains(err.Error(), "conflicting") {
			t.Errorf("%v: want conflicting-flag error, got %v", args, err)
		}
	}
	// Output flags remain compatible.
	if _, err := runCLI(t, "-scenario", path, "-json"); err != nil {
		t.Errorf("-json with -scenario: %v", err)
	}
}
