// Command aqtsim runs one adversarial-queuing simulation: a topology, a
// forwarding protocol, and a (ρ,σ)-bounded adversary, reporting the maximum
// buffer occupancy against the paper's bound.
//
// Examples:
//
//	aqtsim -n 64 -protocol ppts -adversary random -rho 1 -sigma 2 -d 8 -rounds 2000
//	aqtsim -n 64 -protocol pts -d 1 -bandwidth 4 -adversary random -rho 2 -sigma 3
//	aqtsim -n 256 -protocol hpts -ell 2 -adversary random -rho 1/2 -rounds 4000 -heatmap
//	aqtsim -protocol ppts -adversary lowerbound -m 8 -ell 2 -rho 3/4
//	aqtsim -topology spider -arms 4 -len 4 -protocol tree-ppts -adversary random -rho 1 -sigma 1
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	sb "smallbuffers"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aqtsim:", err)
		os.Exit(1)
	}
}

type options struct {
	topology  string
	n         int
	spine     int
	legs      int
	arms      int
	armLen    int
	height    int
	bandwidth int

	protocol string
	ell      int
	drain    bool

	adversary string
	rho       string
	sigma     int
	d         int
	seed      int64
	m         int

	rounds  int
	verify  bool
	heatmap bool
	json    bool
}

func run(ctx context.Context, args []string, w io.Writer) error {
	var o options
	fs := flag.NewFlagSet("aqtsim", flag.ContinueOnError)
	fs.StringVar(&o.topology, "topology", "path", "path | caterpillar | binary | spider")
	fs.IntVar(&o.n, "n", 64, "path length (path topology)")
	fs.IntVar(&o.spine, "spine", 8, "caterpillar spine length")
	fs.IntVar(&o.legs, "legs", 2, "caterpillar legs per spine node")
	fs.IntVar(&o.arms, "arms", 4, "spider arm count")
	fs.IntVar(&o.armLen, "len", 4, "spider arm length")
	fs.IntVar(&o.height, "height", 4, "binary tree height")
	fs.IntVar(&o.bandwidth, "bandwidth", 1, "uniform link bandwidth B ≥ 1 (packets per link per round)")
	fs.StringVar(&o.protocol, "protocol", "ppts", "pts | ppts | tree-pts | tree-ppts | hpts | downhill | oddeven | greedy-fifo|lifo|lis|sis|ntg|ftg")
	fs.IntVar(&o.ell, "ell", 2, "HPTS levels ℓ (and lowerbound ℓ)")
	fs.BoolVar(&o.drain, "drain", false, "enable drain-when-idle (pts/ppts/tree-pts)")
	fs.StringVar(&o.adversary, "adversary", "random", "random | hotspot | stream | roundrobin | burst | greedykiller | lowerbound")
	fs.StringVar(&o.rho, "rho", "1", "injection rate ρ (rational, e.g. 1/2)")
	fs.IntVar(&o.sigma, "sigma", 2, "burst σ")
	fs.IntVar(&o.d, "d", 4, "destination count (random/burst/greedykiller)")
	fs.Int64Var(&o.seed, "seed", 1, "random adversary seed")
	fs.IntVar(&o.m, "m", 4, "lowerbound base m")
	fs.IntVar(&o.rounds, "rounds", 2000, "rounds to simulate (lowerbound: pattern length)")
	fs.BoolVar(&o.verify, "verify", true, "re-check the adversary against its declared (ρ,σ) bound")
	fs.BoolVar(&o.heatmap, "heatmap", false, "render an occupancy heatmap")
	fs.BoolVar(&o.json, "json", false, "dump the trace as JSON instead of text output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rho, err := sb.ParseRat(o.rho)
	if err != nil {
		return fmt.Errorf("bad -rho: %w", err)
	}
	bound := sb.Bound{Rho: rho, Sigma: o.sigma}

	// The lower-bound adversary dictates its own topology.
	var nw *sb.Network
	var adv sb.Adversary
	var predicted string
	if o.adversary == "lowerbound" {
		lb, err := sb.NewLowerBoundAdversary(o.m, o.ell, rho)
		if err != nil {
			return err
		}
		nw, err = lb.Network()
		if err != nil {
			return err
		}
		o.rounds = lb.Rounds()
		adv = lb
		bound = lb.Bound() // the construction is (ρ,1)-bounded regardless of -sigma
		predicted = fmt.Sprintf("Theorem 5.1 floor: max load ≥ ~%v", lb.PredictedBound())
	} else {
		nw, err = buildTopology(o)
		if err != nil {
			return err
		}
		adv, err = buildAdversary(o, nw, bound)
		if err != nil {
			return err
		}
	}

	proto, boundNote, err := buildProtocol(o, nw, bound)
	if err != nil {
		return err
	}
	if predicted == "" {
		predicted = boundNote
	}

	rec := sb.NewTraceRecorder()
	rec.CaptureEvents = o.json
	opts := []sb.RunOption{sb.WithObservers(rec)}
	if o.verify {
		opts = append(opts, sb.WithVerifyAdversary())
	}
	res, err := sb.RunContext(ctx, sb.NewSpec(nw, proto, adv, o.rounds, opts...))
	if err != nil {
		return err
	}

	if o.json {
		return rec.WriteJSON(w)
	}
	fmt.Fprintf(w, "protocol:   %s\n", res.Protocol)
	fmt.Fprintf(w, "topology:   %s (%d nodes, link bandwidth %d)\n", o.topology, nw.Len(), nw.BottleneckBandwidth())
	fmt.Fprintf(w, "demand:     %v over %d rounds (%d injected, %d delivered, %d residual)\n",
		bound, res.Rounds, res.Injected, res.Delivered, res.Residual)
	fmt.Fprintf(w, "max load:   %d (buffer %d, round %d); physical %d\n",
		res.MaxLoad, res.MaxLoadNode, res.MaxLoadRound, res.MaxPhysicalLoad)
	if avg, okAvg := res.AvgLatency(); okAvg {
		fmt.Fprintf(w, "latency:    avg %.1f, max %d\n", avg, res.MaxLatency)
	}
	if link, util, okUtil := res.MaxLinkUtilization(); okUtil {
		fmt.Fprintf(w, "links:      busiest %d at %.0f%% of rounds×bandwidth\n", link, 100*util)
	}
	if predicted != "" {
		fmt.Fprintf(w, "paper:      %s\n", predicted)
	}
	if o.heatmap {
		fmt.Fprintln(w)
		if err := rec.RenderHeatmap(w, 40); err != nil {
			return err
		}
	}
	return nil
}

func buildTopology(o options) (*sb.Network, error) {
	bw := sb.WithUniformBandwidth(o.bandwidth)
	switch o.topology {
	case "path":
		return sb.NewPath(o.n, bw)
	case "caterpillar":
		return sb.CaterpillarTree(o.spine, o.legs, bw)
	case "binary":
		return sb.BinaryTree(o.height, bw)
	case "spider":
		return sb.SpiderTree(o.arms, o.armLen, bw)
	default:
		return nil, fmt.Errorf("unknown -topology %q", o.topology)
	}
}

func buildAdversary(o options, nw *sb.Network, bound sb.Bound) (sb.Adversary, error) {
	sink := nw.Sinks()[0]
	switch o.adversary {
	case "random":
		dests := destinations(o, nw)
		return sb.NewRandomAdversary(nw, bound, dests, o.seed)
	case "hotspot":
		dests := destinations(o, nw)
		return sb.NewHotSpotAdversary(nw, bound, dests, o.seed)
	case "stream":
		return sb.NewStream(bound, 0, sink), nil
	case "roundrobin":
		return sb.NewRoundRobin(bound, 0, destinations(o, nw)), nil
	case "burst":
		if nw.IsPath() {
			if o.d <= 1 {
				return sb.PTSBurstAdversary(nw, bound, o.rounds)
			}
			return sb.PPTSBurstAdversary(nw, bound, o.d, o.rounds)
		}
		return sb.TreeBurstAdversary(nw, bound, nil, o.rounds)
	case "greedykiller":
		return sb.GreedyKillerAdversary(nw, bound, o.d, o.rounds)
	default:
		return nil, fmt.Errorf("unknown -adversary %q", o.adversary)
	}
}

// destinations picks d spread-out destinations (for trees: ancestors of the
// deepest leaf plus the root).
func destinations(o options, nw *sb.Network) []sb.NodeID {
	if nw.IsPath() {
		n := nw.Len()
		d := o.d
		if d < 1 {
			d = 1
		}
		if d >= n {
			d = n - 1
		}
		out := make([]sb.NodeID, d)
		for k := 0; k < d; k++ {
			out[k] = sb.NodeID(n - d + k)
		}
		return out
	}
	// Tree: a chain of destinations up the deepest path.
	deepest := nw.Leaves()[0]
	for _, l := range nw.Leaves() {
		if nw.Depth(l) > nw.Depth(deepest) {
			deepest = l
		}
	}
	var out []sb.NodeID
	for v := nw.Next(deepest); v != sb.None; v = nw.Next(v) {
		out = append(out, v)
	}
	if len(out) > o.d && o.d > 0 {
		out = out[len(out)-o.d:]
	}
	return out
}

func buildProtocol(o options, nw *sb.Network, bound sb.Bound) (sb.Protocol, string, error) {
	switch {
	case o.protocol == "pts":
		note := fmt.Sprintf("Proposition 3.1: max load ≤ 2+σ = %d", 2+o.sigma)
		if o.drain {
			return sb.NewPTS(sb.PTSWithDrain()), note, nil
		}
		return sb.NewPTS(), note, nil
	case o.protocol == "ppts":
		note := "Proposition 3.2: max load ≤ 1+d+σ (d = distinct destinations observed)"
		if o.drain {
			return sb.NewPPTS(sb.PPTSWithDrain()), note, nil
		}
		return sb.NewPPTS(), note, nil
	case o.protocol == "tree-pts":
		note := fmt.Sprintf("Proposition B.3: max load ≤ 2+σ = %d", 2+o.sigma)
		if o.drain {
			return sb.NewTreePTS(sb.TreePTSWithDrain()), note, nil
		}
		return sb.NewTreePTS(), note, nil
	case o.protocol == "tree-ppts":
		return sb.NewTreePPTS(), "Proposition 3.5: max load ≤ 1+d′+σ", nil
	case o.protocol == "hpts":
		note := fmt.Sprintf("Theorem 4.1: max load ≤ ℓ·n^(1/ℓ)+σ+1 (requires ρ ≤ 1/%d and n = m^%d)", o.ell, o.ell)
		return sb.NewHPTS(o.ell), note, nil
	case o.protocol == "downhill":
		return sb.NewDownhill(), "naive local rule: Θ(n) staircase under full pressure (E10)", nil
	case o.protocol == "oddeven":
		return sb.NewOddEvenDownhill(), "parity-staggered local rule: sustains ρ ≤ 1/2 (E10)", nil
	case strings.HasPrefix(o.protocol, "greedy-"):
		var p sb.GreedyPolicy
		switch strings.TrimPrefix(o.protocol, "greedy-") {
		case "fifo":
			p = sb.FIFO
		case "lifo":
			p = sb.LIFO
		case "lis":
			p = sb.LIS
		case "sis":
			p = sb.SIS
		case "ntg":
			p = sb.NTG
		case "ftg":
			p = sb.FTG
		default:
			return nil, "", fmt.Errorf("unknown greedy policy in %q", o.protocol)
		}
		return sb.NewGreedy(p), "greedy baseline (no space guarantee; see E7)", nil
	default:
		return nil, "", fmt.Errorf("unknown -protocol %q", o.protocol)
	}
}
