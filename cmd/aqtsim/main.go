// Command aqtsim runs adversarial-queuing simulations: a topology, a
// forwarding protocol, and a (ρ,σ)-bounded adversary, reporting the maximum
// buffer occupancy against the paper's bound.
//
// Workloads are scenarios — named components from the registry plus a
// bound, horizon, bandwidths, and seeds — and can come from flags or from
// a JSON file (see testdata/scenarios/):
//
//	aqtsim -n 64 -protocol ppts -adversary random -rho 1 -sigma 2 -d 8 -rounds 2000
//	aqtsim -scenario testdata/scenarios/lowerbound.json
//	aqtsim -scenario -                  # read the scenario from stdin
//	aqtsim -protocol pts -adversary burst -dump-scenario   # print flags as JSON
//	aqtsim -scenario e1.json -digest           # canonical scenario digest
//	aqtsim -scenario e1.json -result-digest    # digest of the run's results
//
// A scenario whose axes are lists (e.g. "seeds": [1,2,3]) runs as a
// parallel sweep and reports one row per cell. Flags describe one run:
//
//	aqtsim -n 64 -protocol pts -d 1 -bandwidth 4 -adversary random -rho 2 -sigma 3
//	aqtsim -n 256 -protocol hpts -ell 2 -adversary random -rho 1/2 -rounds 4000 -heatmap
//	aqtsim -protocol ppts -adversary lowerbound -m 8 -ell 2 -rho 3/4
//	aqtsim -topology spider -arms 4 -len 4 -protocol tree-ppts -adversary random -rho 1 -sigma 1
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	sb "smallbuffers"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aqtsim:", err)
		os.Exit(1)
	}
}

type options struct {
	scenario     string
	dumpScenario bool
	digest       bool
	resultDigest bool

	topology  string
	n         int
	spine     int
	legs      int
	arms      int
	armLen    int
	height    int
	bandwidth int

	protocol string
	ell      int
	drain    bool

	adversary string
	rho       string
	sigma     int
	d         int
	seed      int64
	m         int

	fault    string
	faultP   string
	period   int
	down     int
	node     int
	at       int
	faultFor int

	rounds  int
	verify  bool
	heatmap bool
	json    bool
	metrics string
}

func run(ctx context.Context, args []string, w io.Writer) error {
	var o options
	fs := flag.NewFlagSet("aqtsim", flag.ContinueOnError)
	fs.StringVar(&o.scenario, "scenario", "", "run a scenario file instead of flags (\"-\" reads stdin)")
	fs.BoolVar(&o.dumpScenario, "dump-scenario", false, "print the scenario as canonical JSON and exit")
	fs.BoolVar(&o.digest, "digest", false, "print the scenario's canonical digest (sha256:…) and exit")
	fs.BoolVar(&o.resultDigest, "result-digest", false, "run and print only the results digest (sha256:… over the per-cell records)")
	fs.StringVar(&o.topology, "topology", "path", "registered topology name (see -dump-scenario)")
	fs.IntVar(&o.n, "n", 64, "path length (path topology)")
	fs.IntVar(&o.spine, "spine", 8, "caterpillar spine length")
	fs.IntVar(&o.legs, "legs", 2, "caterpillar legs per spine node")
	fs.IntVar(&o.arms, "arms", 4, "spider arm count")
	fs.IntVar(&o.armLen, "len", 4, "spider arm length")
	fs.IntVar(&o.height, "height", 4, "binary tree height")
	fs.IntVar(&o.bandwidth, "bandwidth", 1, "uniform link bandwidth B ≥ 1 (packets per link per round)")
	fs.StringVar(&o.protocol, "protocol", "ppts", "registered protocol name")
	fs.IntVar(&o.ell, "ell", 2, "HPTS levels ℓ (and lowerbound ℓ)")
	fs.BoolVar(&o.drain, "drain", false, "enable drain-when-idle (pts/ppts/tree-pts)")
	fs.StringVar(&o.adversary, "adversary", "random", "registered adversary name")
	fs.StringVar(&o.rho, "rho", "1", "injection rate ρ (rational, e.g. 1/2)")
	fs.IntVar(&o.sigma, "sigma", 2, "burst σ")
	fs.IntVar(&o.d, "d", 4, "destination count (random/burst/greedykiller)")
	fs.Int64Var(&o.seed, "seed", 1, "random adversary seed")
	fs.IntVar(&o.m, "m", 4, "lowerbound base m")
	fs.StringVar(&o.fault, "fault", "", "registered fault model (drop, link_flap, node_crash); empty runs loss-free")
	fs.StringVar(&o.faultP, "p", "1/100", "fault probability (rational in [0,1]; drop/link_flap)")
	fs.IntVar(&o.period, "period", 32, "link_flap window length in rounds")
	fs.IntVar(&o.down, "down", 8, "link_flap downed rounds per window")
	fs.IntVar(&o.node, "node", 0, "node_crash victim node")
	fs.IntVar(&o.at, "at", 0, "node_crash start round")
	fs.IntVar(&o.faultFor, "for", 64, "node_crash outage length in rounds")
	fs.IntVar(&o.rounds, "rounds", 2000, "rounds to simulate (lowerbound: pattern length)")
	fs.BoolVar(&o.verify, "verify", true, "re-check the adversary against its declared (ρ,σ) bound")
	fs.StringVar(&o.metrics, "metrics", "", "comma-separated metric collectors (e.g. load_series,load_hist,latency); stats tables print after the run")
	fs.BoolVar(&o.heatmap, "heatmap", false, "render an occupancy heatmap (single runs)")
	fs.BoolVar(&o.json, "json", false, "dump the trace as JSON instead of text output (single runs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.scenario != "" {
		// Workload flags would be silently overridden by the file; reject
		// the combination instead of running something the user did not ask
		// for. Output flags (-json, -heatmap, -dump-scenario) still apply.
		outputFlags := map[string]bool{"scenario": true, "dump-scenario": true, "json": true, "heatmap": true, "digest": true, "result-digest": true}
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			if !outputFlags[f.Name] {
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-scenario runs the file's workload; drop the conflicting %s", strings.Join(conflict, ", "))
		}
	}

	sc, err := buildScenario(o)
	if err != nil {
		return err
	}
	if o.digest {
		d, err := sc.Digest()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, d)
		return err
	}
	if o.dumpScenario {
		data, err := sc.Marshal()
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	if o.resultDigest {
		// The results digest always runs through the sweep path — a
		// one-point scenario is a one-cell sweep replaying exactly the
		// single run (RawSeeds) — so local digests compare 1:1 with the
		// aqtserve response for the same scenario file.
		agg, err := sc.Run(ctx)
		if agg == nil {
			return err
		}
		if _, perr := fmt.Fprintln(w, agg.Digest()); perr != nil {
			return perr
		}
		return err
	}
	if sc.IsSingle() {
		return runSingle(ctx, o, sc, w)
	}
	if o.json || o.heatmap {
		return fmt.Errorf("-json and -heatmap need a one-point scenario; %q is a sweep grid", o.scenario)
	}
	return runSweep(ctx, sc, w)
}

// buildScenario resolves the workload: a scenario file when -scenario is
// set, otherwise the flags assembled through the registry (the scenario
// constructor — no per-component switches live here).
func buildScenario(o options) (*sb.Scenario, error) {
	if o.scenario != "" {
		return sb.LoadScenarioFile(o.scenario)
	}
	var metricNames []string
	for _, name := range strings.Split(o.metrics, ",") {
		if name = strings.TrimSpace(name); name != "" {
			metricNames = append(metricNames, name)
		}
	}
	return sb.ScenarioFromFlags(sb.ScenarioFlags{
		Topology:  o.topology,
		Protocol:  o.protocol,
		Adversary: o.adversary,
		Params: map[string]any{
			"n": o.n, "spine": o.spine, "legs": o.legs, "arms": o.arms,
			"len": o.armLen, "height": o.height,
			"ell": o.ell, "drain": o.drain,
			"d": o.d, "m": o.m,
			"p": o.faultP, "period": o.period, "down": o.down,
			"node": o.node, "at": o.at, "for": o.faultFor,
		},
		Rho:       o.rho,
		Sigma:     o.sigma,
		Rounds:    o.rounds,
		Bandwidth: o.bandwidth,
		Seed:      o.seed,
		Verify:    o.verify,
		Metrics:   metricNames,
		Fault:     o.fault,
	})
}

// runSingle executes a one-point scenario and prints the classic report.
func runSingle(ctx context.Context, o options, sc *sb.Scenario, w io.Writer) error {
	single, err := sc.CompileSingle()
	if err != nil {
		return err
	}
	rec := sb.NewTraceRecorder()
	rec.CaptureEvents = o.json
	res, err := sb.RunContext(ctx, single.Spec(sb.WithObservers(rec)))
	if err != nil {
		return err
	}

	if o.json {
		return rec.WriteJSON(w)
	}
	fmt.Fprintf(w, "protocol:   %s\n", res.Protocol)
	fmt.Fprintf(w, "topology:   %s (%d nodes, link bandwidth %d)\n",
		single.TopologyLabel, single.Net.Len(), single.Net.BottleneckBandwidth())
	fmt.Fprintf(w, "demand:     %v over %d rounds (%d injected, %d delivered, %d residual)\n",
		single.Bound, res.Rounds, res.Injected, res.Delivered, res.Residual)
	if single.Faults != nil {
		goodput := "-"
		if res.Injected > 0 {
			goodput = fmt.Sprintf("%.0f%%", 100*float64(res.Delivered)/float64(res.Injected))
		}
		fmt.Fprintf(w, "faults:     %s (%d dropped in transit, goodput %s)\n",
			single.FaultLabel, res.Dropped, goodput)
	}
	fmt.Fprintf(w, "max load:   %d (buffer %d, round %d); physical %d\n",
		res.MaxLoad, res.MaxLoadNode, res.MaxLoadRound, res.MaxPhysicalLoad)
	if avg, okAvg := res.AvgLatency(); okAvg {
		fmt.Fprintf(w, "latency:    avg %.1f, max %d\n", avg, res.MaxLatency)
	}
	if link, util, okUtil := res.MaxLinkUtilization(); okUtil {
		fmt.Fprintf(w, "links:      busiest %d at %.0f%% of rounds×bandwidth\n", link, 100*util)
	}
	if single.Note != "" {
		fmt.Fprintf(w, "paper:      %s\n", single.Note)
	}
	if len(single.Metrics) > 0 {
		if err := printMetrics(w, res.Metrics); err != nil {
			return err
		}
	}
	if o.heatmap {
		fmt.Fprintln(w)
		if err := rec.RenderHeatmap(w, 40); err != nil {
			return err
		}
	}
	return nil
}

// printMetrics renders each collector summary: the scalar line, an ASCII
// histogram for distributions, and a sparkline per bounded series.
func printMetrics(w io.Writer, ms map[string]sb.MetricSummary) error {
	names := make([]string, 0, len(ms))
	for name := range ms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := ms[name]
		fmt.Fprintf(w, "\nmetric %s (%s)", s.Name, s.Kind)
		if line := s.ScalarLine(); line != "" {
			fmt.Fprintf(w, ": %s", line)
		}
		if len(s.Scalars) == 0 && s.Hist == nil && len(s.Series) == 0 {
			fmt.Fprint(w, ": per-round series are per cell; rerun as a one-point scenario to plot them")
		}
		fmt.Fprintln(w)
		if s.Hist != nil {
			if err := sb.RenderHistogram(w, "", s.Hist.Bars(), 40); err != nil {
				return err
			}
		}
		for _, ser := range s.Series {
			fmt.Fprintf(w, "  %s/%s, stride %d over %d rounds ", s.Name, ser.Key, ser.Stride, ser.Rounds)
			if err := sb.RenderSeries(w, "", ser.Values, 72); err != nil {
				return err
			}
		}
	}
	return nil
}

// runSweep executes a grid scenario on the parallel harness, one row per
// cell.
func runSweep(ctx context.Context, sc *sb.Scenario, w io.Writer) error {
	agg, err := sc.Run(ctx)
	if agg == nil {
		return err
	}
	fmt.Fprintf(w, "%-64s %9s %9s %9s %11s\n", "cell", "max load", "delivered", "dropped", "avg latency")
	for _, cr := range agg.Cells {
		if cr.Err != nil {
			fmt.Fprintf(w, "%-64s error: %v\n", cr.Cell, cr.Err)
			continue
		}
		lat := "-"
		if avg, ok := cr.Result.AvgLatency(); ok {
			lat = fmt.Sprintf("%.1f", avg)
		}
		fmt.Fprintf(w, "%-64s %9d %9d %9d %11s\n", cr.Cell, cr.Result.MaxLoad, cr.Result.Delivered, cr.Result.Dropped, lat)
	}
	fmt.Fprintf(w, "\ncells:      %d completed, %d failed of %d\n", agg.Completed, agg.Failed, agg.Requested)
	if agg.Completed > 0 {
		fmt.Fprintf(w, "max load:   mean %.1f, max %d\n", agg.MaxLoad.Mean, int(agg.MaxLoad.Max))
	}
	if len(sc.Metrics) > 0 && len(agg.Metrics) > 0 {
		fmt.Fprintf(w, "\naggregated metrics over %d clean cells:", agg.Completed)
		if err := printMetrics(w, agg.Metrics); err != nil {
			return err
		}
	}
	if err != nil {
		return err
	}
	if agg.Failed > 0 {
		return fmt.Errorf("%d of %d cells failed: %v", agg.Failed, agg.Requested, agg.FirstErr())
	}
	return nil
}
