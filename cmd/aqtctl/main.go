// Command aqtctl coordinates a fleet of aqtserve daemons: it takes one
// scenario file, splits its sweep grid into deterministic index-range
// shards, dispatches them across the fleet with retry and work stealing,
// and merges the streamed cells back into exactly the record set — and
// results digest — of a local single-process run.
//
//	aqtctl -fleet localhost:8080,localhost:8081,localhost:8082 \
//	       -scenario testdata/scenarios/e1-pts-burst.json
//	aqtctl -fleet @fleet.txt -scenario sweep.json -verify-local
//	aqtctl -fleet @fleet.txt -scenario sweep.json -result-digest
//	aqtctl -fleet @fleet.txt -live -interval 2s
//
// A fleet file (@path) lists one endpoint per line; blank lines and
// #-comments are ignored.
//
// -live turns aqtctl into a fleet monitor instead of a dispatcher: it
// polls every daemon's /v1/runs/{id}/live views and prints one merged
// progress/occupancy report per tick (strictly observational — watching
// never perturbs execution or results digests). -once prints a single
// snapshot and exits.
//
// Failure semantics: a shard whose daemon dies mid-stream is discarded
// wholesale and re-dispatched to a healthy daemon (capped exponential
// backoff, bounded attempts, per-daemon quarantine); an idle daemon
// steals the largest in-flight shard by cancelling it remotely, keeping
// the cells it already streamed and re-dispatching only the uncovered
// remainder. Cells are merged exactly once or the run fails — there is
// no partial success. -verify-local re-runs the scenario in-process and
// hard-errors on any digest divergence.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	sb "smallbuffers"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "aqtctl:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("aqtctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fleetArg := fs.String("fleet", "", "comma-separated aqtserve endpoints (host:port,…), or @file with one per line")
	scenarioPath := fs.String("scenario", "", "scenario file to execute across the fleet")
	shards := fs.Int("shards", 2, "initial shards per daemon")
	inflight := fs.Int("inflight", 2, "concurrent shard streams per daemon")
	maxAttempts := fs.Int("max-attempts", 4, "dispatch attempts per shard before the run fails")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubles per consecutive failure)")
	backoffMax := fs.Duration("backoff-max", 2*time.Second, "retry backoff cap")
	minSteal := fs.Int("min-steal", 4, "smallest shard piece work stealing may create")
	storeDir := fs.String("store", "", "durable result-store directory: merged cells stream to disk (O(1) coordinator memory) and survive a killed run")
	resume := fs.Bool("resume", false, "with -store, resume a partial entry: dispatch only the cells not yet on disk")
	liveMode := fs.Bool("live", false, "monitor the fleet's in-flight runs instead of dispatching a sweep")
	interval := fs.Duration("interval", time.Second, "poll interval for -live")
	once := fs.Bool("once", false, "with -live, print one snapshot and exit")
	verifyLocal := fs.Bool("verify-local", false, "re-run the scenario in-process and fail on digest divergence")
	digestOnly := fs.Bool("result-digest", false, "print only the merged results digest")
	asJSON := fs.Bool("json", false, "print the fleet summary as JSON")
	quiet := fs.Bool("q", false, "suppress progress logging")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fleetArg == "" {
		return fmt.Errorf("-fleet is required")
	}
	if *liveMode {
		if *scenarioPath != "" {
			return fmt.Errorf("-live monitors runs already in flight; it does not take -scenario")
		}
	} else if *scenarioPath == "" {
		return fmt.Errorf("-scenario is required")
	}

	endpoints, err := parseFleet(*fleetArg)
	if err != nil {
		return err
	}
	if *liveMode {
		return runLive(ctx, sb.FleetConfig{Endpoints: endpoints}, *interval, *once, stdout)
	}
	if *resume && *storeDir == "" {
		return fmt.Errorf("-resume requires -store")
	}
	sc, err := sb.LoadScenarioFile(*scenarioPath)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(stderr, "aqtctl: close:", cerr)
			}
		}()
		w = f
	}

	cfg := sb.FleetConfig{
		Endpoints:         endpoints,
		ShardsPerDaemon:   *shards,
		InFlightPerDaemon: *inflight,
		MaxAttempts:       *maxAttempts,
		BackoffBase:       *backoff,
		BackoffMax:        *backoffMax,
		MinStealCells:     *minSteal,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	if *storeDir != "" {
		dig, err := sc.Digest()
		if err != nil {
			return err
		}
		total, err := sc.GridSize()
		if err != nil {
			return err
		}
		st, err := sb.OpenResultStore(*storeDir, dig, sb.CellIndexRange{Lo: 0, Hi: total}, sb.ResultStoreOptions{})
		if err != nil {
			return err
		}
		defer func() {
			if cerr := st.Close(); cerr != nil {
				fmt.Fprintln(stderr, "aqtctl: store close:", cerr)
			}
		}()
		if n := st.Count(); n > 0 && !*resume {
			return fmt.Errorf("store already holds %d of %d cells for this scenario; pass -resume to continue it (or delete %s)",
				n, total, sb.StoreEntryDir(*storeDir, dig))
		} else if n > 0 && !*quiet {
			fmt.Fprintf(stderr, "fleet: resuming %d of %d cells from %s\n", n, total, *storeDir)
		}
		cfg.Store = st
	}

	res, err := sb.RunFleet(ctx, cfg, sc)
	if err != nil {
		return err
	}
	if *verifyLocal {
		if err := sb.VerifyFleetLocal(ctx, sc, res.Summary.ResultsDigest); err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintln(stderr, "fleet: local verification passed")
		}
	}

	if *digestOnly {
		_, err := fmt.Fprintln(w, res.Summary.ResultsDigest)
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res.Summary)
	}
	return printSummary(w, sc.Name, res.Summary)
}

// runLive polls the fleet's live views and prints one merged report per
// tick until interrupted (or after a single tick with -once).
func runLive(ctx context.Context, cfg sb.FleetConfig, interval time.Duration, once bool, w io.Writer) error {
	err := sb.FleetLiveWatch(ctx, cfg, interval, func(snap *sb.FleetLiveView) bool {
		printLive(w, snap)
		return !once
	})
	if errors.Is(err, context.Canceled) {
		return nil // interrupted by the user; the last snapshot already printed
	}
	return err
}

// printLive renders one fleet-wide live snapshot: aggregate progress,
// then each daemon's in-flight runs, then the merged windowed metrics.
func printLive(w io.Writer, snap *sb.FleetLiveView) {
	fmt.Fprintf(w, "fleet      %d runs in flight, cells %d/%d (%d‰), %d executing, %d.%03d cells/s\n",
		snap.RunsInFlight, snap.CellsDone, snap.CellsTotal, snap.Progress(),
		snap.CellsInFlight, snap.CellsPerSecMillis/1000, snap.CellsPerSecMillis%1000)
	for _, d := range snap.Daemons {
		switch {
		case d.Err != "":
			fmt.Fprintf(w, "  %-24s UNREACHABLE: %s\n", d.Endpoint, d.Err)
		case len(d.Runs) == 0:
			fmt.Fprintf(w, "  %-24s idle\n", d.Endpoint)
		default:
			for _, r := range d.Runs {
				eta := ""
				if r.ETAMillis > 0 {
					eta = fmt.Sprintf(", eta %v", (time.Duration(r.ETAMillis) * time.Millisecond).Round(time.Millisecond))
				}
				fmt.Fprintf(w, "  %-24s %s %s cells %d/%d (%d‰)%s\n",
					d.Endpoint, r.ID, r.Status, r.CellsDone, r.CellsTotal, r.Progress(), eta)
			}
		}
	}
	for _, s := range snap.Metrics {
		if line := s.ScalarLine(); line != "" {
			fmt.Fprintf(w, "  metric %-18s %s\n", s.Name+":", line)
		}
	}
	fmt.Fprintln(w, "---")
}

// parseFleet expands the -fleet operand into an endpoint list.
func parseFleet(arg string) ([]string, error) {
	var raw []string
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(strings.TrimPrefix(arg, "@"))
		if err != nil {
			return nil, fmt.Errorf("fleet file: %w", err)
		}
		raw = strings.Split(string(data), "\n")
	} else {
		raw = strings.Split(arg, ",")
	}
	var eps []string
	seen := map[string]bool{}
	for _, line := range raw {
		ep := strings.TrimSpace(line)
		if ep == "" || strings.HasPrefix(ep, "#") {
			continue
		}
		if seen[ep] {
			return nil, fmt.Errorf("duplicate fleet endpoint %q", ep)
		}
		seen[ep] = true
		eps = append(eps, ep)
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("no endpoints in -fleet %q", arg)
	}
	return eps, nil
}

func printSummary(w io.Writer, name string, sum sb.FleetSummary) error {
	if name != "" {
		fmt.Fprintf(w, "%s\n", name)
	}
	fmt.Fprintf(w, "cells      %d requested, %d completed, %d failed\n", sum.Requested, sum.Completed, sum.Failed)
	if sum.Resumed > 0 {
		fmt.Fprintf(w, "resumed    %d cells already on disk; only the remainder was dispatched\n", sum.Resumed)
	}
	fmt.Fprintf(w, "digest     %s\n", sum.ResultsDigest)
	fmt.Fprintf(w, "fleet      %d retries, %d steals, wall %v (ideal %v)\n",
		sum.Retries, sum.Steals, sum.Wall.Round(time.Millisecond), sum.Ideal.Round(time.Millisecond))
	for _, d := range sum.Daemons {
		note := ""
		if d.Quarantined {
			note = "  QUARANTINED"
		}
		fmt.Fprintf(w, "  %-24s %4d cells in %d dispatches, %d failures, stolen from %d×, busy %v%s\n",
			d.Endpoint, d.Cells, d.Dispatches, d.Failures, d.StolenFrom, d.Busy.Round(time.Millisecond), note)
	}
	for _, s := range sum.Metrics {
		if line := s.ScalarLine(); line != "" {
			fmt.Fprintf(w, "  metric %-18s %s\n", s.Name+":", line)
		}
	}
	_, err := fmt.Fprintln(w, "ok")
	return err
}
