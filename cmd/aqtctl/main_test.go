package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smallbuffers/internal/scenario"
	"smallbuffers/internal/service"
)

func startDaemons(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		svc := service.New(service.Config{Workers: 2, SweepWorkers: 2})
		ts := httptest.NewServer(svc)
		t.Cleanup(func() {
			ts.Close()
			svc.Close()
		})
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	return addrs
}

func writeScenario(t *testing.T) string {
	t.Helper()
	src := `{
		"name": "aqtctl-grid",
		"topology": {"name": "path", "params": {"n": 16}},
		"protocol": {"name": "ppts"},
		"adversary": {"name": "random", "params": {"d": 2}},
		"bound": {"rho": "1/2", "sigma": 2},
		"rounds": [30, 60],
		"seeds": [1, 2, 3]
	}`
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAqtctlEndToEnd drives the CLI against an in-process 2-daemon
// fleet: -result-digest must print exactly the local digest, and the
// human summary must report every cell.
func TestAqtctlEndToEnd(t *testing.T) {
	addrs := startDaemons(t, 2)
	scPath := writeScenario(t)

	data, err := os.ReadFile(scPath)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Digest()

	var stdout, stderr bytes.Buffer
	args := []string{
		"-fleet", strings.Join(addrs, ","),
		"-scenario", scPath,
		"-verify-local",
		"-result-digest",
	}
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("aqtctl: %v\nstderr:\n%s", err, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != want {
		t.Fatalf("-result-digest printed %q, local digest %s", got, want)
	}

	// Human summary via a fleet file.
	fleetFile := filepath.Join(t.TempDir(), "fleet.txt")
	if err := os.WriteFile(fleetFile, []byte("# test fleet\n"+strings.Join(addrs, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	if err := run(context.Background(), []string{"-fleet", "@" + fleetFile, "-scenario", scPath, "-q"}, &stdout, &stderr); err != nil {
		t.Fatalf("aqtctl summary: %v", err)
	}
	out := stdout.String()
	if !strings.Contains(out, "6 requested, 6 completed, 0 failed") {
		t.Errorf("summary missing cell counts:\n%s", out)
	}
	if !strings.Contains(out, want) {
		t.Errorf("summary missing digest:\n%s", out)
	}
}

func TestParseFleet(t *testing.T) {
	eps, err := parseFleet("a:1, b:2,,")
	if err != nil || len(eps) != 2 || eps[0] != "a:1" || eps[1] != "b:2" {
		t.Errorf("parseFleet list = %v, %v", eps, err)
	}
	if _, err := parseFleet("a:1,a:1"); err == nil {
		t.Error("duplicate endpoints accepted")
	}
	if _, err := parseFleet(",,"); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := parseFleet("@/nonexistent/fleet.txt"); err == nil {
		t.Error("missing fleet file accepted")
	}
}

func TestAqtctlFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-scenario", "x.json"}, &out, &out); err == nil {
		t.Error("missing -fleet accepted")
	}
	if err := run(context.Background(), []string{"-fleet", "a:1"}, &out, &out); err == nil {
		t.Error("missing -scenario accepted")
	}
	if err := run(context.Background(), []string{"-fleet", "a:1", "-live", "-scenario", "x.json"}, &out, &out); err == nil {
		t.Error("-live with -scenario accepted")
	}
}

// TestAqtctlLiveOnce exercises the monitor mode against an idle fleet:
// one snapshot, every daemon shown, and a clean exit.
func TestAqtctlLiveOnce(t *testing.T) {
	addrs := startDaemons(t, 2)
	var stdout, stderr bytes.Buffer
	args := []string{"-fleet", strings.Join(addrs, ","), "-live", "-once"}
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("aqtctl -live -once: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "0 runs in flight") {
		t.Errorf("missing fleet line:\n%s", out)
	}
	for _, a := range addrs {
		if !strings.Contains(out, a) {
			t.Errorf("daemon %s missing from snapshot:\n%s", a, out)
		}
	}
	if !strings.Contains(out, "idle") {
		t.Errorf("idle daemons not marked idle:\n%s", out)
	}
}
