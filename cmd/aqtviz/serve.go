// The -serve mode: a live web dashboard over the observation tier.
//
//	aqtviz -serve :8080 -run http://localhost:9000/v1/runs/r-000001
//	aqtviz -serve :8080 -fleet localhost:9000,localhost:9001
//
// The dashboard is a single embedded HTML page (stdlib only — no
// frameworks, no CDN fetches) that polls this process's /api/live proxy
// and, in single-run mode, follows /api/stream — an SSE proxy onto the
// daemon's /v1/runs/{id}/stream. Everything it shows comes from the
// strictly observational /live views, so leaving a dashboard open
// cannot perturb execution order or results digests.
package main

import (
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	sb "smallbuffers"
)

//go:embed dashboard.html
var dashboardHTML []byte

// dashboard proxies one run's (or one fleet's) live views to the
// embedded page. Exactly one of runURL / fleet is set.
type dashboard struct {
	runURL string // base run URL: http://host:port/v1/runs/<id>
	fleet  sb.FleetConfig
	client *http.Client
}

func runServe(ctx context.Context, addr, runURL, fleetArg string, out io.Writer) error {
	d := &dashboard{client: &http.Client{}}
	switch {
	case runURL != "" && fleetArg != "":
		return fmt.Errorf("-run and -fleet are mutually exclusive")
	case runURL != "":
		u := strings.TrimSuffix(runURL, "/")
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		d.runURL = u
	case fleetArg != "":
		eps, err := parseEndpoints(fleetArg)
		if err != nil {
			return err
		}
		d.fleet = sb.FleetConfig{Endpoints: eps}
	default:
		return fmt.Errorf("-serve needs -run URL or -fleet endpoints to watch")
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", d.handleIndex)
	mux.HandleFunc("GET /api/live", d.handleLive)
	mux.HandleFunc("GET /api/stream", d.handleStream)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	fmt.Fprintf(out, "aqtviz: dashboard on http://%s\n", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	case err := <-errc:
		return err
	}
}

// parseEndpoints expands a -fleet operand (comma list or @file, same
// grammar as aqtctl's) into an endpoint list.
func parseEndpoints(arg string) ([]string, error) {
	var raw []string
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(strings.TrimPrefix(arg, "@"))
		if err != nil {
			return nil, fmt.Errorf("fleet file: %w", err)
		}
		raw = strings.Split(string(data), "\n")
	} else {
		raw = strings.Split(arg, ",")
	}
	var eps []string
	for _, line := range raw {
		ep := strings.TrimSpace(line)
		if ep == "" || strings.HasPrefix(ep, "#") {
			continue
		}
		eps = append(eps, ep)
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("no endpoints in -fleet %q", arg)
	}
	return eps, nil
}

func (d *dashboard) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}

// handleLive answers the page's poll: in single-run mode a proxied copy
// of the daemon's /live view, in fleet mode a freshly merged
// fleet-wide snapshot. Both are wrapped so the page can tell the modes
// apart without configuration.
func (d *dashboard) handleLive(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	if d.runURL == "" {
		snap, err := sb.FleetLiveSnapshot(r.Context(), d.fleet)
		if err != nil {
			writeJSONError(w, http.StatusBadGateway, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"mode": "fleet", "fleet": snap})
		return
	}
	view, status, err := d.fetchJSON(r.Context(), d.runURL+"/live")
	if err != nil {
		writeJSONError(w, http.StatusBadGateway, err)
		return
	}
	if status != http.StatusOK {
		writeJSONError(w, status, fmt.Errorf("daemon answered %d", status))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"mode": "run", "run": view})
}

func (d *dashboard) fetchJSON(ctx context.Context, url string) (json.RawMessage, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}

// handleStream proxies the daemon's SSE stream to the page, flushing
// event by event. Fleet mode has no single stream to follow; the page
// falls back to polling alone.
func (d *dashboard) handleStream(w http.ResponseWriter, r *http.Request) {
	if d.runURL == "" {
		writeJSONError(w, http.StatusNotFound, fmt.Errorf("no SSE stream in fleet mode"))
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, d.runURL+"/stream", nil)
	if err != nil {
		writeJSONError(w, http.StatusBadGateway, err)
		return
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := d.client.Do(req)
	if err != nil {
		writeJSONError(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		writeJSONError(w, resp.StatusCode, fmt.Errorf("daemon answered %d", resp.StatusCode))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func writeJSONError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
