// Command aqtviz renders the paper's Figure 1 (the hierarchical partition
// of the line with a packet's virtual trajectory) and, in -demo mode, an
// occupancy heatmap of a live simulation.
//
// Examples:
//
//	aqtviz                          # Figure 1 exactly as in the paper
//	aqtviz -m 3 -ell 3 -src 0 -dst 22
//	aqtviz -demo -n 64 -rounds 600  # heatmap of PPTS under burst traffic
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	sb "smallbuffers"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aqtviz:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("aqtviz", flag.ContinueOnError)
	m := fs.Int("m", 2, "hierarchy base m")
	ell := fs.Int("ell", 4, "hierarchy levels ℓ")
	src := fs.Int("src", 0, "trajectory source (src ≥ dst omits the trajectory)")
	dst := fs.Int("dst", 13, "trajectory destination")
	demo := fs.Bool("demo", false, "render a live occupancy heatmap instead")
	n := fs.Int("n", 64, "demo path length")
	d := fs.Int("d", 8, "demo destination count")
	rounds := fs.Int("rounds", 600, "demo rounds")
	bandwidth := fs.Int("bandwidth", 1, "demo uniform link bandwidth B ≥ 1")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *demo {
		return runDemo(ctx, *n, *d, *rounds, *bandwidth)
	}

	h, err := sb.NewHierarchy(*m, *ell)
	if err != nil {
		return err
	}
	return sb.RenderFigure1(os.Stdout, h, *src, *dst)
}

func runDemo(ctx context.Context, n, d, rounds, bandwidth int) error {
	nw, err := sb.NewPath(n, sb.WithUniformBandwidth(bandwidth))
	if err != nil {
		return err
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 3}
	adv, err := sb.PPTSBurstAdversary(nw, bound, d, rounds)
	if err != nil {
		return err
	}
	rec := sb.NewTraceRecorder()
	rec.CaptureEvents = false
	res, err := sb.RunContext(ctx,
		sb.NewSpec(nw, sb.NewPPTS(sb.PPTSWithDrain()), adv, rounds, sb.WithObservers(rec)))
	if err != nil {
		return err
	}
	fmt.Printf("PPTS under a d=%d burst workload on %d nodes (link bandwidth %d): max load %d (B=1 bound %d)\n\n",
		d, n, bandwidth, res.MaxLoad, 1+d+bound.Sigma)
	if err := rec.RenderHeatmap(os.Stdout, 40); err != nil {
		return err
	}
	fmt.Println()
	return sb.RenderSparkline(os.Stdout, rec.MaxLoadSeries(), 72)
}
