// Command aqtviz renders the paper's Figure 1 (the hierarchical partition
// of the line with a packet's virtual trajectory) and, in -demo mode, an
// occupancy heatmap of a live simulation.
//
// Examples:
//
//	aqtviz                          # Figure 1 exactly as in the paper
//	aqtviz -m 3 -ell 3 -src 0 -dst 22
//	aqtviz -demo -n 64 -rounds 600  # heatmap of PPTS under burst traffic
//	aqtviz -demo -scenario testdata/scenarios/e1-pts-burst.json
//	aqtviz -demo -scenario -        # scenario from stdin
//	aqtviz -serve :8080 -run http://localhost:9000/v1/runs/r-000001
//	aqtviz -serve :8080 -fleet localhost:9000,localhost:9001
//
// With -scenario the demo drives off the same declarative specs as
// aqtsim and aqtbench: any one-point scenario file renders as a heatmap
// plus a max-load sparkline.
//
// With -serve, aqtviz becomes a web dashboard over the live observation
// tier: it watches one run (-run, with SSE cell tailing) or a whole
// fleet (-fleet) and renders progress bars, windowed occupancy
// sparklines, histograms, and per-daemon status — see serve.go.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	sb "smallbuffers"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aqtviz:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("aqtviz", flag.ContinueOnError)
	m := fs.Int("m", 2, "hierarchy base m")
	ell := fs.Int("ell", 4, "hierarchy levels ℓ")
	src := fs.Int("src", 0, "trajectory source (src ≥ dst omits the trajectory)")
	dst := fs.Int("dst", 13, "trajectory destination")
	demo := fs.Bool("demo", false, "render a live occupancy heatmap instead")
	scenarioPath := fs.String("scenario", "", "demo a one-point scenario file (\"-\" reads stdin; implies -demo)")
	n := fs.Int("n", 64, "demo path length")
	d := fs.Int("d", 8, "demo destination count")
	rounds := fs.Int("rounds", 600, "demo rounds")
	bandwidth := fs.Int("bandwidth", 1, "demo uniform link bandwidth B ≥ 1")
	serveAddr := fs.String("serve", "", "serve the live web dashboard on this address (e.g. :8080)")
	runURL := fs.String("run", "", "with -serve: run URL to watch (http://host:port/v1/runs/<id>)")
	fleetArg := fs.String("fleet", "", "with -serve: comma-separated aqtserve endpoints, or @file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *serveAddr != "" {
		// The dashboard watches remote runs; the local figure/demo knobs
		// have no meaning there, so reject the mix.
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "serve", "run", "fleet":
			default:
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-serve watches remote runs; drop the conflicting %s", strings.Join(conflict, ", "))
		}
		return runServe(ctx, *serveAddr, *runURL, *fleetArg, os.Stdout)
	}
	if *runURL != "" || *fleetArg != "" {
		return fmt.Errorf("-run and -fleet only apply with -serve")
	}

	if *scenarioPath != "" {
		// The file defines the whole workload; built-in demo knobs would
		// be silently ignored, so reject the mix.
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scenario", "demo":
			default:
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-scenario drives the demo from the file; drop the conflicting %s", strings.Join(conflict, ", "))
		}
		return runScenarioDemo(ctx, *scenarioPath)
	}
	if *demo {
		return runDemo(ctx, *n, *d, *rounds, *bandwidth)
	}

	h, err := sb.NewHierarchy(*m, *ell)
	if err != nil {
		return err
	}
	return sb.RenderFigure1(os.Stdout, h, *src, *dst)
}

// runScenarioDemo renders the occupancy heatmap of a one-point scenario
// file — the same declarative specs aqtsim -scenario runs.
func runScenarioDemo(ctx context.Context, path string) error {
	sc, err := sb.LoadScenarioFile(path)
	if err != nil {
		return err
	}
	single, err := sc.CompileSingle()
	if err != nil {
		return err
	}
	rec := sb.NewTraceRecorder()
	rec.CaptureEvents = false
	res, err := sb.RunContext(ctx, single.Spec(sb.WithObservers(rec)))
	if err != nil {
		return err
	}
	title := sc.Name
	if title == "" {
		title = path
	}
	fmt.Printf("%s: %s on %s (%d nodes, link bandwidth %d), %v over %d rounds: max load %d\n",
		title, res.Protocol, single.TopologyLabel, single.Net.Len(),
		single.Net.BottleneckBandwidth(), single.Bound, res.Rounds, res.MaxLoad)
	if single.Note != "" {
		fmt.Printf("paper: %s\n", single.Note)
	}
	fmt.Println()
	if err := rec.RenderHeatmap(os.Stdout, 40); err != nil {
		return err
	}
	fmt.Println()
	if err := sb.RenderSparkline(os.Stdout, rec.MaxLoadSeries(), 72); err != nil {
		return err
	}
	// Scenarios that select the load_series metric also plot the bounded
	// series — the whole-run view that stays O(cap) at any horizon.
	if ls, ok := res.Metrics["load_series"]; ok && len(single.Metrics) > 0 {
		fmt.Println()
		for _, ser := range ls.Series {
			label := fmt.Sprintf("load_series/%s stride %d over %d rounds", ser.Key, ser.Stride, ser.Rounds)
			if err := sb.RenderSeries(os.Stdout, label, ser.Values, 72); err != nil {
				return err
			}
		}
	}
	return nil
}

func runDemo(ctx context.Context, n, d, rounds, bandwidth int) error {
	nw, err := sb.NewPath(n, sb.WithUniformBandwidth(bandwidth))
	if err != nil {
		return err
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 3}
	adv, err := sb.PPTSBurstAdversary(nw, bound, d, rounds)
	if err != nil {
		return err
	}
	rec := sb.NewTraceRecorder()
	rec.CaptureEvents = false
	res, err := sb.RunContext(ctx,
		sb.NewSpec(nw, sb.NewPPTS(sb.PPTSWithDrain()), adv, rounds, sb.WithObservers(rec)))
	if err != nil {
		return err
	}
	fmt.Printf("PPTS under a d=%d burst workload on %d nodes (link bandwidth %d): max load %d (B=1 bound %d)\n\n",
		d, n, bandwidth, res.MaxLoad, 1+d+bound.Sigma)
	if err := rec.RenderHeatmap(os.Stdout, 40); err != nil {
		return err
	}
	fmt.Println()
	return sb.RenderSparkline(os.Stdout, rec.MaxLoadSeries(), 72)
}
