package main

import (
	"context"
	"testing"
)

func TestFigureDefaults(t *testing.T) {
	if err := run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestFigureCustom(t *testing.T) {
	if err := run(context.Background(), []string{"-m", "3", "-ell", "3", "-src", "0", "-dst", "22"}); err != nil {
		t.Fatal(err)
	}
}

func TestFigureNoTrajectory(t *testing.T) {
	if err := run(context.Background(), []string{"-src", "5", "-dst", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestDemo(t *testing.T) {
	if err := run(context.Background(), []string{"-demo", "-n", "32", "-d", "4", "-rounds", "150"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-m", "1"}); err == nil {
		t.Error("m=1 accepted")
	}
	if err := run(context.Background(), []string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-demo", "-n", "1"}); err == nil {
		t.Error("n=1 accepted")
	}
}
