package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFigureDefaults(t *testing.T) {
	if err := run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestFigureCustom(t *testing.T) {
	if err := run(context.Background(), []string{"-m", "3", "-ell", "3", "-src", "0", "-dst", "22"}); err != nil {
		t.Fatal(err)
	}
}

func TestFigureNoTrajectory(t *testing.T) {
	if err := run(context.Background(), []string{"-src", "5", "-dst", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestDemo(t *testing.T) {
	if err := run(context.Background(), []string{"-demo", "-n", "32", "-d", "4", "-rounds", "150"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-m", "1"}); err == nil {
		t.Error("m=1 accepted")
	}
	if err := run(context.Background(), []string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-demo", "-n", "1"}); err == nil {
		t.Error("n=1 accepted")
	}
}

// The demo drives off the same declarative scenario files as
// aqtsim/aqtbench.
func TestScenarioDemo(t *testing.T) {
	if err := run(context.Background(), []string{"-demo", "-scenario", "../../testdata/scenarios/e1-pts-burst.json"}); err != nil {
		t.Fatal(err)
	}
	// -scenario implies -demo.
	if err := run(context.Background(), []string{"-scenario", "../../testdata/scenarios/e1-pts-burst.json"}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioDemoErrors(t *testing.T) {
	// Grid scenarios have no single heatmap to render.
	sweep := filepath.Join(t.TempDir(), "sweep.json")
	src := `{
		"topology": {"name": "path", "params": {"n": 16}},
		"protocol": {"name": "ppts"},
		"adversary": {"name": "random", "params": {"d": 2}},
		"bound": {"rho": "1/2", "sigma": 2},
		"rounds": 100,
		"seeds": [1, 2]
	}`
	if err := os.WriteFile(sweep, []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-scenario", sweep}); err == nil {
		t.Error("sweep scenario accepted by the demo")
	}
	if err := run(context.Background(), []string{"-scenario", "/nonexistent.json"}); err == nil {
		t.Error("missing scenario file accepted")
	}
	// Built-in demo knobs conflict with the file-driven workload.
	for _, extra := range [][]string{{"-n", "32"}, {"-rounds", "50"}, {"-bandwidth", "2"}} {
		args := append([]string{"-scenario", "../../testdata/scenarios/e1-pts-burst.json"}, extra...)
		if err := run(context.Background(), args); err == nil || !strings.Contains(err.Error(), "conflicting") {
			t.Errorf("%v: want conflicting-flag error, got %v", args, err)
		}
	}
}
