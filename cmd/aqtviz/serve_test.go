package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	sb "smallbuffers"
	"smallbuffers/internal/service"
)

const dashScenario = `{
	"name": "dash-sweep",
	"topology": {"name": "path", "params": {"n": 16}},
	"protocol": {"name": "ppts"},
	"adversary": {"name": "random", "params": {"d": 2}},
	"bound": {"rho": "1/2", "sigma": 2},
	"rounds": 40,
	"seeds": [1, 2],
	"metrics": [{"name": "window_load", "params": {"window": 8}}]
}`

func startService(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Workers: 2, SweepWorkers: 2})
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

// TestDashboardRunMode drives the proxy handlers against a real daemon:
// /api/live wraps the run's live view, /api/stream relays the SSE cell
// stream, and / serves the embedded page.
func TestDashboardRunMode(t *testing.T) {
	ts := startService(t)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(dashScenario))
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if report.ID == "" {
		t.Fatal("no run id in report")
	}

	d := &dashboard{runURL: ts.URL + "/v1/runs/" + report.ID, client: &http.Client{}}

	rec := httptest.NewRecorder()
	d.handleIndex(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if !strings.Contains(rec.Body.String(), "aqtviz") {
		t.Error("index does not serve the embedded dashboard")
	}

	rec = httptest.NewRecorder()
	d.handleLive(rec, httptest.NewRequest(http.MethodGet, "/api/live", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/live: %d: %s", rec.Code, rec.Body.String())
	}
	var live struct {
		Mode string `json:"mode"`
		Run  struct {
			ID         string `json:"id"`
			CellsTotal int    `json:"cells_total"`
			CellsDone  int    `json:"cells_done"`
			Metrics    []struct {
				Name string `json:"name"`
			} `json:"metrics"`
		} `json:"run"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &live); err != nil {
		t.Fatalf("decoding /api/live: %v\n%s", err, rec.Body.String())
	}
	if live.Mode != "run" || live.Run.ID != report.ID || live.Run.CellsTotal != 2 || live.Run.CellsDone != 2 {
		t.Errorf("live view = %+v", live)
	}
	found := false
	for _, m := range live.Run.Metrics {
		found = found || m.Name == "window_load"
	}
	if !found {
		t.Errorf("window_load missing from live metrics: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	d.handleStream(rec, httptest.NewRequest(http.MethodGet, "/api/stream", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/stream: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("stream content-type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "event: cell") || !strings.Contains(body, "event: summary") {
		t.Errorf("stream proxy missing cell/summary events:\n%s", body)
	}
}

func TestDashboardFleetMode(t *testing.T) {
	ts := startService(t)
	d := &dashboard{
		fleet:  sb.FleetConfig{Endpoints: []string{strings.TrimPrefix(ts.URL, "http://")}},
		client: &http.Client{},
	}
	rec := httptest.NewRecorder()
	d.handleLive(rec, httptest.NewRequest(http.MethodGet, "/api/live", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/live: %d: %s", rec.Code, rec.Body.String())
	}
	var live struct {
		Mode  string `json:"mode"`
		Fleet struct {
			Daemons []struct {
				Endpoint string `json:"endpoint"`
			} `json:"daemons"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &live); err != nil {
		t.Fatal(err)
	}
	if live.Mode != "fleet" || len(live.Fleet.Daemons) != 1 {
		t.Errorf("fleet view = %+v", live)
	}

	// No single stream exists fleet-wide; the page just polls.
	rec = httptest.NewRecorder()
	d.handleStream(rec, httptest.NewRequest(http.MethodGet, "/api/stream", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("fleet /api/stream = %d, want 404", rec.Code)
	}
}

func TestServeFlagErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-serve", ":0", "-demo"}); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Errorf("-serve -demo: %v", err)
	}
	if err := run(ctx, []string{"-run", "http://x/v1/runs/y"}); err == nil {
		t.Error("-run without -serve accepted")
	}
	if err := run(ctx, []string{"-fleet", "a:1"}); err == nil {
		t.Error("-fleet without -serve accepted")
	}
	if err := runServe(ctx, "127.0.0.1:0", "", "", io.Discard); err == nil {
		t.Error("-serve without a watch target accepted")
	}
	if err := runServe(ctx, "127.0.0.1:0", "http://x", "a:1", io.Discard); err == nil {
		t.Error("-run with -fleet accepted")
	}
}

func TestParseEndpoints(t *testing.T) {
	eps, err := parseEndpoints("a:1, b:2,,# c")
	if err != nil || len(eps) != 2 || eps[0] != "a:1" || eps[1] != "b:2" {
		t.Errorf("parseEndpoints = %v, %v", eps, err)
	}
	if _, err := parseEndpoints(",,"); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := parseEndpoints("@/nonexistent"); err == nil {
		t.Error("missing fleet file accepted")
	}
}
