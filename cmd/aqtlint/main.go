// Command aqtlint runs the repository's determinism analyzers over Go
// package patterns:
//
//	go run ./cmd/aqtlint ./...
//
// The suite mechanically enforces the invariants every digest guarantee
// rests on: no order-sensitive map iteration in digest paths (detmap), no
// wall clocks or global rand in the deterministic packages (nowallclock),
// integer-only wire records (nofloat), cell-seed-derived RNGs (seedflow),
// and checked hash writes in digest construction (hasherr). A finding can
// be suppressed — with a written reason — by a trailing or preceding
//
//	//aqtlint:allow <analyzer> -- <reason>
//
// comment; suppressions without a reason, and stale suppressions, are
// findings themselves.
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"smallbuffers/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aqtlint [-list] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the determinism analyzer suite over the package patterns\n")
		fmt.Fprintf(os.Stderr, "(default ./...).\n\nAnalyzers:\n")
		printAnalyzers(os.Stderr)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		printAnalyzers(os.Stdout)
		return
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqtlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(dir, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqtlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, lint.Analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqtlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "aqtlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func printAnalyzers(w *os.File) {
	for _, a := range lint.Analyzers {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
}
