// Command aqtserve is the scenario-execution daemon: it accepts
// declarative scenario JSON over HTTP (the same files aqtsim -scenario
// and aqtbench -scenarios run locally), executes them on a bounded worker
// pool, and memoizes results in a digest-keyed LRU cache so repeated
// workloads are served without re-simulating.
//
//	aqtserve                       # listen on :8080 with 4 workers
//	aqtserve -addr :9000 -workers 8 -sweep-workers 2 -cache-cells 16384
//	aqtserve -cache-dir /var/cache/aqt   # completed runs survive restarts
//
//	curl -XPOST --data-binary @testdata/scenarios/e1-pts-burst.json \
//	    http://localhost:8080/v1/runs
//	curl http://localhost:8080/v1/registry
//	curl http://localhost:8080/metrics
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops accepting,
// in-flight runs finish (up to -drain-timeout), then the pool shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smallbuffers/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "aqtserve:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled and the drain
// completes. ready, when non-nil, receives the bound address once the
// listener is up (tests bind :0 and need the resolved port).
func run(ctx context.Context, args []string, logw io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("aqtserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 4, "concurrent runs executed (the run worker pool)")
	sweepWorkers := fs.Int("sweep-workers", 1, "cell workers per run (total concurrent cells ≤ workers × sweep-workers)")
	cacheCells := fs.Int("cache-cells", 4096, "result cache capacity in sweep cells (-1 disables caching)")
	cacheDir := fs.String("cache-dir", "", "durable result cache directory: completed runs persist and survive a daemon restart")
	queueDepth := fs.Int("queue-depth", 256, "submissions accepted beyond the worker pool before 503")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight runs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	svc := service.New(service.Config{
		Workers:      *workers,
		SweepWorkers: *sweepWorkers,
		CacheCells:   *cacheCells,
		CacheDir:     *cacheDir,
		QueueDepth:   *queueDepth,
	})
	httpSrv := &http.Server{Handler: svc}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "aqtserve: listening on %s (%d workers × %d sweep workers, cache %d cells)\n",
		ln.Addr(), *workers, *sweepWorkers, *cacheCells)
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight runs finish, then
	// tear the pool down (cancelling anything past the deadline).
	fmt.Fprintf(logw, "aqtserve: draining (timeout %s)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	drainErr := svc.Drain(drainCtx)
	svc.Close()
	if drainErr != nil {
		fmt.Fprintf(logw, "aqtserve: drain timed out; in-flight runs cancelled\n")
	}
	fmt.Fprintf(logw, "aqtserve: stopped\n")
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	return nil
}
