package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a shutdown function that triggers the graceful drain.
func startDaemon(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), io.Discard,
			func(addr string) { addrCh <- addr })
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, func() error {
			cancel()
			select {
			case err := <-errCh:
				return err
			case <-time.After(30 * time.Second):
				return context.DeadlineExceeded
			}
		}
	case err := <-errCh:
		t.Fatalf("daemon failed to start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up")
	}
	return "", nil
}

func TestDaemonServesAndDrains(t *testing.T) {
	url, shutdown := startDaemon(t, "-workers", "2", "-drain-timeout", "20s")

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	data, err := os.ReadFile("../../testdata/scenarios/e1-pts-burst.json")
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(url+"/v1/runs", "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Status        string `json:"status"`
		ResultsDigest string `json:"results_digest"`
		Cached        bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Status != "done" || rep.ResultsDigest == "" {
		t.Fatalf("run: %d %+v", resp.StatusCode, rep)
	}

	// Graceful shutdown completes and reports no error.
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener is gone afterwards.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("daemon still serving after drain")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}, io.Discard, nil); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "999.999.999.999:1"}, io.Discard, nil); err == nil {
		t.Error("unlistenable address accepted")
	}
}
