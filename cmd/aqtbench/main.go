// Command aqtbench regenerates the paper's evaluation: every theorem and
// figure as a measured table (see DESIGN.md §4 for the experiment index).
//
// Examples:
//
//	aqtbench                      # run the full suite (F1, E1–E12)
//	aqtbench -run E4              # one experiment
//	aqtbench -run E12 -bandwidths 1,2,4,8,16   # custom link-bandwidth axis
//	aqtbench -o report.txt        # write to a file
//	aqtbench -json -o bench.json  # machine-readable outcomes (BENCH_*.json trajectory)
//	aqtbench -list                # list experiments
//
// Interrupting the process (SIGINT/SIGTERM) cancels the suite between
// simulation rounds.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	sb "smallbuffers"
)

// parseBandwidths parses the -bandwidths axis ("1,2,4,8").
func parseBandwidths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || b < 1 {
			return nil, fmt.Errorf("bad -bandwidths entry %q (want integers ≥ 1)", part)
		}
		out = append(out, b)
	}
	return out, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aqtbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("aqtbench", flag.ContinueOnError)
	id := fs.String("run", "", "experiment to run (E1…E12, F1); empty = all")
	out := fs.String("o", "", "output file (default stdout)")
	list := fs.Bool("list", false, "list experiments and exit")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON outcomes instead of text tables")
	bandwidths := fs.String("bandwidths", "", "comma-separated link-bandwidth axis for E12 (default 1,2,4,8)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "aqtbench: close:", cerr)
			}
		}()
		w = f
	}

	if *list {
		for _, e := range sb.Experiments() {
			if _, err := fmt.Fprintf(w, "%-4s %-60s %s\n", e.ID, e.Title, e.Paper); err != nil {
				return err
			}
		}
		return nil
	}

	exps := sb.Experiments()
	if *bandwidths != "" {
		bs, err := parseBandwidths(*bandwidths)
		if err != nil {
			return err
		}
		for i, e := range exps {
			if e.ID == "E12" {
				exps[i] = sb.BandwidthExperiment(bs...)
			}
		}
	}
	if *id != "" {
		found := false
		for _, e := range exps {
			if e.ID == *id {
				exps = []sb.Experiment{e}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown experiment %q", *id)
		}
	}

	if *asJSON {
		return runJSON(ctx, w, exps)
	}

	ok := true
	for _, e := range exps {
		if _, err := fmt.Fprintf(w, "\n%s — %s (%s)\n\n", e.ID, e.Title, e.Paper); err != nil {
			return err
		}
		outcome, err := e.Run(ctx, w)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		ok = ok && outcome.OK
	}
	if !ok {
		return fmt.Errorf("some experiments report violated bounds")
	}
	_, err := fmt.Fprintln(w, "\nall experiments passed")
	return err
}

// The JSON schema tracked across benchmark snapshots (BENCH_*.json): one
// record per experiment with its structured tables, so downstream tooling
// can diff measured values between revisions without scraping text.
type jsonReport struct {
	Suite       string           `json:"suite"`
	OK          bool             `json:"ok"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Paper  string      `json:"paper"`
	OK     bool        `json:"ok"`
	Notes  []string    `json:"notes,omitempty"`
	Tables []jsonTable `json:"tables"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func runJSON(ctx context.Context, w io.Writer, exps []sb.Experiment) error {
	report := jsonReport{Suite: "smallbuffers reproduction", OK: true}
	for _, e := range exps {
		outcome, err := e.Run(ctx, io.Discard)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		je := jsonExperiment{ID: e.ID, Title: e.Title, Paper: e.Paper, OK: outcome.OK, Notes: outcome.Notes}
		for _, t := range outcome.Tables {
			je.Tables = append(je.Tables, jsonTable{Title: t.Title, Columns: t.Columns, Rows: t.Rows})
		}
		report.Experiments = append(report.Experiments, je)
		report.OK = report.OK && outcome.OK
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if !report.OK {
		return fmt.Errorf("some experiments report violated bounds")
	}
	return nil
}
