// Command aqtbench regenerates the paper's evaluation: every theorem and
// figure as a measured table (see DESIGN.md §4 for the experiment index),
// and runs scenario-file workloads (see testdata/scenarios/).
//
// Examples:
//
//	aqtbench                      # run the full suite (F1, E1–E12)
//	aqtbench -run E4              # one experiment
//	aqtbench -run E12 -bandwidths 1,2,4,8,16   # custom link-bandwidth axis
//	aqtbench -o report.txt        # write to a file
//	aqtbench -json -o bench.json  # machine-readable outcomes (BENCH_*.json trajectory)
//	aqtbench -list                # list experiments
//	aqtbench -scenarios testdata/scenarios    # run every scenario file in a directory
//	aqtbench -scenarios e7.json -validate     # validate without running
//	aqtbench -scenarios testdata/scenarios -server http://localhost:8080
//	                                          # replay the corpus against aqtserve
//	aqtbench -scenarios testdata/scenarios -fleet localhost:8080,localhost:8081
//	                                          # replay the corpus across an aqtserve fleet
//
// Interrupting the process (SIGINT/SIGTERM) cancels the suite between
// simulation rounds.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	sb "smallbuffers"
	"smallbuffers/internal/service"
)

// parseBandwidths parses the -bandwidths axis ("1,2,4,8").
func parseBandwidths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || b < 1 {
			return nil, fmt.Errorf("bad -bandwidths entry %q (want integers ≥ 1)", part)
		}
		out = append(out, b)
	}
	return out, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aqtbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("aqtbench", flag.ContinueOnError)
	id := fs.String("run", "", "experiment to run (E1…E12, F1); empty = all")
	out := fs.String("o", "", "output file (default stdout)")
	list := fs.Bool("list", false, "list experiments and exit")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON outcomes instead of text tables")
	bandwidths := fs.String("bandwidths", "", "comma-separated link-bandwidth axis for E12 (default 1,2,4,8)")
	scenarios := fs.String("scenarios", "", "run scenario files instead of experiments (a .json file or a directory of them)")
	validate := fs.Bool("validate", false, "with -scenarios: validate and round-trip the files without running them")
	server := fs.String("server", "", "with -scenarios: POST each scenario to a running aqtserve at this base URL instead of simulating locally")
	fleetArg := fs.String("fleet", "", "with -scenarios: shard each scenario across a fleet of aqtserve daemons (comma-separated endpoints, or @file with one per line)")
	storeDir := fs.String("store", "", "with -scenarios (local runs): durable result store — scenarios whose stored records verify are skipped, fresh results persist")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "aqtbench: close:", cerr)
			}
		}()
		w = f
	}

	if *scenarios != "" {
		if *asJSON || *list || *id != "" || *bandwidths != "" {
			return fmt.Errorf("-scenarios cannot be combined with -json, -list, -run, or -bandwidths")
		}
		if *server != "" && *fleetArg != "" {
			return fmt.Errorf("-server and -fleet are mutually exclusive")
		}
		if *server != "" || *fleetArg != "" {
			if *validate {
				return fmt.Errorf("-validate is local-only; drop it when using -server or -fleet")
			}
			if *storeDir != "" {
				return fmt.Errorf("-store is local-only; drop it when using -server or -fleet")
			}
		}
		if *storeDir != "" && *validate {
			return fmt.Errorf("-store runs scenarios; drop -validate")
		}
		if *server != "" {
			return runScenariosRemote(ctx, w, *server, *scenarios)
		}
		if *fleetArg != "" {
			return runScenariosFleet(ctx, w, *fleetArg, *scenarios)
		}
		return runScenarios(ctx, w, *scenarios, *validate, *storeDir)
	}
	if *validate {
		return fmt.Errorf("-validate needs -scenarios")
	}
	if *server != "" {
		return fmt.Errorf("-server needs -scenarios")
	}
	if *fleetArg != "" {
		return fmt.Errorf("-fleet needs -scenarios")
	}
	if *storeDir != "" {
		return fmt.Errorf("-store needs -scenarios")
	}

	if *list {
		for _, e := range sb.Experiments() {
			if _, err := fmt.Fprintf(w, "%-4s %-60s %s\n", e.ID, e.Title, e.Paper); err != nil {
				return err
			}
		}
		return nil
	}

	exps := sb.Experiments()
	if *bandwidths != "" {
		bs, err := parseBandwidths(*bandwidths)
		if err != nil {
			return err
		}
		for i, e := range exps {
			if e.ID == "E12" {
				exps[i] = sb.BandwidthExperiment(bs...)
			}
		}
	}
	if *id != "" {
		found := false
		for _, e := range exps {
			if e.ID == *id {
				exps = []sb.Experiment{e}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown experiment %q", *id)
		}
	}

	if *asJSON {
		return runJSON(ctx, w, exps)
	}

	ok := true
	for _, e := range exps {
		if _, err := fmt.Fprintf(w, "\n%s — %s (%s)\n\n", e.ID, e.Title, e.Paper); err != nil {
			return err
		}
		outcome, err := e.Run(ctx, w)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		ok = ok && outcome.OK
	}
	if !ok {
		return fmt.Errorf("some experiments report violated bounds")
	}
	_, err := fmt.Fprintln(w, "\nall experiments passed")
	return err
}

// scenarioFiles expands the -scenarios operand: a .json file stands
// alone, a directory contributes its *.json entries, sorted.
func scenarioFiles(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	files, err := filepath.Glob(filepath.Join(path, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no *.json scenario files under %s", path)
	}
	sort.Strings(files)
	return files, nil
}

// forEachScenarioFile expands the -scenarios operand and applies fn to
// every file, printing FAIL lines and aggregating the failure count; on
// success it prints the "<verb> all N scenario files" summary (with the
// optional suffix, e.g. the remote base URL).
func forEachScenarioFile(ctx context.Context, w io.Writer, path, verb, suffix string, fn func(f string) error) error {
	files, err := scenarioFiles(path)
	if err != nil {
		return err
	}
	failed := 0
	for _, f := range files {
		if err := fn(f); err != nil {
			failed++
			fmt.Fprintf(w, "%s: FAIL: %v\n", f, err)
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenario files failed", failed, len(files))
	}
	_, err = fmt.Fprintf(w, "\n%s all %d scenario files%s\n", verb, len(files), suffix)
	return err
}

// runScenarios validates (and, unless validateOnly, executes) every
// scenario file, reporting one block per file. Validation includes the
// canonical round-trip: the marshaled form must load and re-marshal to
// the same bytes. Files that select metrics contribute their aggregated
// summaries to a corpus-wide report (percentiles re-derived from the
// merged histograms, not averaged).
func runScenarios(ctx context.Context, w io.Writer, path string, validateOnly bool, storeDir string) error {
	verb := "ran"
	if validateOnly {
		verb = "validated"
	}
	var corpus []map[string]sb.MetricSummary
	if err := forEachScenarioFile(ctx, w, path, verb, "", func(f string) error {
		m, err := runScenarioFile(ctx, w, f, validateOnly, storeDir)
		if len(m) > 0 {
			corpus = append(corpus, m)
		}
		return err
	}); err != nil {
		return err
	}
	return printCorpusMetrics(w, corpus)
}

// printMetricLines writes one "metric <name>: k=v …" line per summary,
// sorted by name.
func printMetricLines(w io.Writer, indent string, ms map[string]sb.MetricSummary) {
	names := make([]string, 0, len(ms))
	for name := range ms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := ms[name]
		if line := s.ScalarLine(); line != "" {
			fmt.Fprintf(w, "%smetric %-18s %s\n", indent, s.Name+":", line)
		}
	}
}

// printCorpusMetrics merges every contributing file's summaries and
// reports corpus-wide aggregates.
func printCorpusMetrics(w io.Writer, corpus []map[string]sb.MetricSummary) error {
	if len(corpus) == 0 {
		return nil
	}
	merged, err := sb.MergeMetricSummaries(corpus)
	if err != nil || len(merged) == 0 {
		return err
	}
	fmt.Fprintf(w, "\ncorpus metrics (merged over %d scenario files):\n", len(corpus))
	printMetricLines(w, "  ", merged)
	return nil
}

// storedDigest reports the verified results digest the store already
// holds for sc, or "" when the scenario still needs to run. Entries that
// fail verification (or predate the current span/format) are evicted so
// the run recomputes them.
func storedDigest(root string, sc *sb.Scenario) (string, error) {
	dig, err := sc.Digest()
	if err != nil {
		return "", err
	}
	total, err := sc.GridSize()
	if err != nil {
		return "", err
	}
	st, err := sb.OpenResultStore(root, dig, sb.CellIndexRange{Lo: 0, Hi: total}, sb.ResultStoreOptions{})
	if err != nil {
		return "", sb.RemoveResultStoreEntry(root, dig)
	}
	defer st.Close()
	if !st.Complete() || st.RecordsDigest() == "" {
		return "", nil
	}
	rederived, err := st.Digest()
	if err != nil || rederived != st.RecordsDigest() {
		st.Close()
		return "", sb.RemoveResultStoreEntry(root, dig)
	}
	return rederived, nil
}

// persistRun appends a completed sweep's records to the store entry and
// seals it with the results digest.
func persistRun(root string, sc *sb.Scenario, agg *sb.SweepResult) error {
	dig, err := sc.Digest()
	if err != nil {
		return err
	}
	total, err := sc.GridSize()
	if err != nil {
		return err
	}
	st, err := sb.OpenResultStore(root, dig, sb.CellIndexRange{Lo: 0, Hi: total}, sb.ResultStoreOptions{})
	if err != nil {
		return err
	}
	defer st.Close()
	for _, rec := range agg.Records() {
		if st.Has(rec.Index) {
			continue
		}
		if err := st.Append(rec); err != nil {
			return err
		}
	}
	if st.Complete() {
		return st.SetRecordsDigest(agg.Digest())
	}
	return nil
}

func runScenarioFile(ctx context.Context, w io.Writer, path string, validateOnly bool, storeDir string) (map[string]sb.MetricSummary, error) {
	sc, err := sb.LoadScenarioFile(path)
	if err != nil {
		return nil, err
	}
	// Canonical round-trip gate: Marshal∘Load must be a fixed point.
	first, err := sc.Marshal()
	if err != nil {
		return nil, err
	}
	reloaded, err := sb.ParseScenario(first)
	if err != nil {
		return nil, fmt.Errorf("canonical form does not load: %w", err)
	}
	second, err := reloaded.Marshal()
	if err != nil {
		return nil, err
	}
	if string(first) != string(second) {
		return nil, fmt.Errorf("canonical form is not a marshal fixed point")
	}

	title := sc.Name
	if title == "" {
		title = filepath.Base(path)
	}
	if validateOnly {
		_, err := fmt.Fprintf(w, "%-28s valid\n", title)
		return nil, err
	}
	if storeDir != "" {
		stored, err := storedDigest(storeDir, sc)
		if err != nil {
			return nil, err
		}
		if stored != "" {
			_, err := fmt.Fprintf(w, "%-28s stored (results %s)\n", title, stored)
			return nil, err
		}
	}

	agg, err := sc.Run(ctx)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\n%s — %s\n", title, path)
	if sc.Doc != "" {
		fmt.Fprintf(w, "%s\n", sc.Doc)
	}
	fmt.Fprintln(w)
	for _, cr := range agg.Cells {
		if cr.Err != nil {
			fmt.Fprintf(w, "  %-70s error: %v\n", cr.Cell, cr.Err)
			continue
		}
		fmt.Fprintf(w, "  %-70s max load %3d, delivered %6d\n", cr.Cell, cr.Result.MaxLoad, cr.Result.Delivered)
	}
	if agg.Failed > 0 {
		return nil, fmt.Errorf("%d of %d cells failed: %v", agg.Failed, agg.Requested, agg.FirstErr())
	}
	var ms map[string]sb.MetricSummary
	if len(sc.Metrics) > 0 {
		ms = agg.Metrics
		printMetricLines(w, "  ", ms)
	}
	if storeDir != "" {
		if err := persistRun(storeDir, sc, agg); err != nil {
			return ms, fmt.Errorf("persisting results: %w", err)
		}
	}
	_, err = fmt.Fprintf(w, "  ok (%d cells)\n", agg.Completed)
	return ms, err
}

// runScenariosRemote replays every scenario file against a running
// aqtserve daemon: each file is validated locally, POSTed in canonical
// form, and reported with the server's digests — so a corpus replay
// doubles as a remote-vs-local reproducibility check (compare
// results_digest with `aqtsim -scenario f -result-digest`).
func runScenariosRemote(ctx context.Context, w io.Writer, baseURL, path string) error {
	baseURL = strings.TrimRight(baseURL, "/")
	client := &http.Client{}
	var corpus []map[string]sb.MetricSummary
	if err := forEachScenarioFile(ctx, w, path, "ran", " against "+baseURL, func(f string) error {
		m, err := runScenarioRemote(ctx, w, client, baseURL, f)
		if len(m) > 0 {
			corpus = append(corpus, m)
		}
		return err
	}); err != nil {
		return err
	}
	return printCorpusMetrics(w, corpus)
}

func runScenarioRemote(ctx context.Context, w io.Writer, client *http.Client, baseURL, path string) (map[string]sb.MetricSummary, error) {
	sc, err := sb.LoadScenarioFile(path)
	if err != nil {
		return nil, err
	}
	body, err := sc.Marshal()
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	var rep service.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bad response (%s): %w", resp.Status, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: %s: %s", resp.Status, rep.Error)
	}

	title := sc.Name
	if title == "" {
		title = filepath.Base(path)
	}
	from := "simulated"
	if rep.Cached {
		from = "served from cache"
	}
	fmt.Fprintf(w, "\n%s — %s (%s, run %s, %s)\n\n", title, path, rep.Digest, rep.ID, from)
	for _, cell := range rep.Cells {
		if cell.Err != "" {
			fmt.Fprintf(w, "  %-70s error: %v\n", cell.Cell, cell.Err)
			continue
		}
		fmt.Fprintf(w, "  %-70s max load %3d, delivered %6d\n", cell.Cell, cell.MaxLoad, cell.Delivered)
	}
	if rep.Summary == nil {
		return nil, fmt.Errorf("server report carries no summary (status %s)", rep.Status)
	}
	if rep.Summary.Failed > 0 {
		return nil, fmt.Errorf("%d of %d cells failed", rep.Summary.Failed, rep.Summary.Requested)
	}
	var ms map[string]sb.MetricSummary
	if len(sc.Metrics) > 0 && len(rep.Summary.Metrics) > 0 {
		ms = make(map[string]sb.MetricSummary, len(rep.Summary.Metrics))
		for _, s := range rep.Summary.Metrics {
			ms[s.Name] = s
		}
		printMetricLines(w, "  ", ms)
	}
	_, err = fmt.Fprintf(w, "  ok (%d cells, results %s)\n", rep.Summary.Completed, rep.ResultsDigest)
	return ms, err
}

// runScenariosFleet replays every scenario file across a fleet of
// aqtserve daemons via the coordinator: each grid is sharded, dispatched
// with retry and work stealing, and merged — and the merged results
// digest is printed next to the fleet timing so a corpus replay doubles
// as the distributed-vs-local reproducibility check (compare with
// `aqtsim -scenario f -result-digest`).
func runScenariosFleet(ctx context.Context, w io.Writer, fleetArg, path string) error {
	endpoints, err := parseFleetArg(fleetArg)
	if err != nil {
		return err
	}
	cfg := sb.FleetConfig{Endpoints: endpoints}
	var corpus []map[string]sb.MetricSummary
	if err := forEachScenarioFile(ctx, w, path, "ran", fmt.Sprintf(" across %d daemons", len(endpoints)), func(f string) error {
		m, err := runScenarioFleet(ctx, w, cfg, f)
		if len(m) > 0 {
			corpus = append(corpus, m)
		}
		return err
	}); err != nil {
		return err
	}
	return printCorpusMetrics(w, corpus)
}

// parseFleetArg expands a -fleet operand: a comma-separated endpoint
// list, or @file with one endpoint per line (blank lines and #-comments
// ignored).
func parseFleetArg(arg string) ([]string, error) {
	var raw []string
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(strings.TrimPrefix(arg, "@"))
		if err != nil {
			return nil, fmt.Errorf("fleet file: %w", err)
		}
		raw = strings.Split(string(data), "\n")
	} else {
		raw = strings.Split(arg, ",")
	}
	var eps []string
	for _, line := range raw {
		if ep := strings.TrimSpace(line); ep != "" && !strings.HasPrefix(ep, "#") {
			eps = append(eps, ep)
		}
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("no endpoints in -fleet %q", arg)
	}
	return eps, nil
}

func runScenarioFleet(ctx context.Context, w io.Writer, cfg sb.FleetConfig, path string) (map[string]sb.MetricSummary, error) {
	sc, err := sb.LoadScenarioFile(path)
	if err != nil {
		return nil, err
	}
	res, err := sb.RunFleet(ctx, cfg, sc)
	if err != nil {
		return nil, err
	}
	sum := res.Summary

	title := sc.Name
	if title == "" {
		title = filepath.Base(path)
	}
	fmt.Fprintf(w, "\n%s — %s\n\n", title, path)
	for _, cell := range res.Records {
		if cell.Err != "" {
			fmt.Fprintf(w, "  %-70s error: %v\n", cell.Cell, cell.Err)
			continue
		}
		fmt.Fprintf(w, "  %-70s max load %3d, delivered %6d\n", cell.Cell, cell.MaxLoad, cell.Delivered)
	}
	if sum.Failed > 0 {
		return nil, fmt.Errorf("%d of %d cells failed", sum.Failed, sum.Requested)
	}
	var ms map[string]sb.MetricSummary
	if len(sc.Metrics) > 0 && len(sum.Metrics) > 0 {
		ms = make(map[string]sb.MetricSummary, len(sum.Metrics))
		for _, s := range sum.Metrics {
			ms[s.Name] = s
		}
		printMetricLines(w, "  ", ms)
	}
	fmt.Fprintf(w, "  fleet: %d retries, %d steals, wall %v (ideal %v)\n",
		sum.Retries, sum.Steals, sum.Wall.Round(time.Millisecond), sum.Ideal.Round(time.Millisecond))
	_, err = fmt.Fprintf(w, "  ok (%d cells, results %s)\n", sum.Completed, sum.ResultsDigest)
	return ms, err
}

// The JSON schema tracked across benchmark snapshots (BENCH_*.json): one
// record per experiment with its structured tables, so downstream tooling
// can diff measured values between revisions without scraping text.
type jsonReport struct {
	Suite       string           `json:"suite"`
	OK          bool             `json:"ok"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Paper  string      `json:"paper"`
	OK     bool        `json:"ok"`
	Notes  []string    `json:"notes,omitempty"`
	Tables []jsonTable `json:"tables"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func runJSON(ctx context.Context, w io.Writer, exps []sb.Experiment) error {
	report := jsonReport{Suite: "smallbuffers reproduction", OK: true}
	for _, e := range exps {
		outcome, err := e.Run(ctx, io.Discard)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		je := jsonExperiment{ID: e.ID, Title: e.Title, Paper: e.Paper, OK: outcome.OK, Notes: outcome.Notes}
		for _, t := range outcome.Tables {
			je.Tables = append(je.Tables, jsonTable{Title: t.Title, Columns: t.Columns, Rows: t.Rows})
		}
		report.Experiments = append(report.Experiments, je)
		report.OK = report.OK && outcome.OK
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if !report.OK {
		return fmt.Errorf("some experiments report violated bounds")
	}
	return nil
}
