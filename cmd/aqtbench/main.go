// Command aqtbench regenerates the paper's evaluation: every theorem and
// figure as a measured table (see DESIGN.md §4 for the experiment index).
//
// Examples:
//
//	aqtbench                # run the full suite (F1, E1–E9)
//	aqtbench -run E4        # one experiment
//	aqtbench -o report.txt  # write to a file
//	aqtbench -list          # list experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	sb "smallbuffers"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aqtbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aqtbench", flag.ContinueOnError)
	id := fs.String("run", "", "experiment to run (E1…E9, F1); empty = all")
	out := fs.String("o", "", "output file (default stdout)")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "aqtbench: close:", cerr)
			}
		}()
		w = f
	}

	if *list {
		for _, e := range sb.Experiments() {
			if _, err := fmt.Fprintf(w, "%-4s %-60s %s\n", e.ID, e.Title, e.Paper); err != nil {
				return err
			}
		}
		return nil
	}

	if *id != "" {
		e, err := sb.ExperimentByID(*id)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s — %s (%s)\n\n", e.ID, e.Title, e.Paper)
		outcome, err := e.Run(w)
		if err != nil {
			return err
		}
		if !outcome.OK {
			return fmt.Errorf("%s reports violated bounds", e.ID)
		}
		return nil
	}

	ok, err := sb.RunAllExperiments(w)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("some experiments report violated bounds")
	}
	_, err = fmt.Fprintln(w, "\nall experiments passed")
	return err
}
