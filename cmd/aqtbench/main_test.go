package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smallbuffers/internal/service"
)

func TestList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "list.txt")
	if err := run(context.Background(), []string{"-list", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, id := range []string{"F1", "E1", "E5", "E10"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f1.txt")
	if err := run(context.Background(), []string{"-run", "F1", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "virtual trajectory") {
		t.Errorf("F1 output missing trajectory:\n%s", data)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), []string{"-run", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBadOutputPath(t *testing.T) {
	if err := run(context.Background(), []string{"-list", "-o", "/nonexistent-dir/x.txt"}); err == nil {
		t.Error("bad output path accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f1.json")
	if err := run(context.Background(), []string{"-run", "F1", "-json", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report jsonReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, data)
	}
	if !report.OK || len(report.Experiments) != 1 {
		t.Fatalf("unexpected report: %+v", report)
	}
	e := report.Experiments[0]
	if e.ID != "F1" || !e.OK || len(e.Tables) == 0 {
		t.Errorf("unexpected experiment record: %+v", e)
	}
	if len(e.Tables[0].Columns) == 0 || len(e.Tables[0].Rows) == 0 {
		t.Errorf("table not structured: %+v", e.Tables[0])
	}
}

func TestScenarioCorpusValidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := run(context.Background(), []string{"-scenarios", "../../testdata/scenarios", "-validate", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "validated all") {
		t.Errorf("corpus validation incomplete:\n%s", data)
	}
}

func TestScenarioFileRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := run(context.Background(), []string{"-scenarios", "../../testdata/scenarios/e1-pts-burst.json", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"e1-pts-burst", "max load", "ok (1 cells)"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("scenario report missing %q:\n%s", want, data)
		}
	}
}

func TestScenarioBadPath(t *testing.T) {
	if err := run(context.Background(), []string{"-scenarios", "/nonexistent"}); err == nil {
		t.Error("bad scenarios path accepted")
	}
}

// TestScenariosAgainstServer replays a scenario against an in-process
// aqtserve and checks the report (including the cache-hit path on the
// second replay).
func TestScenariosAgainstServer(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(svc)
	defer func() {
		ts.Close()
		svc.Close()
	}()

	path := filepath.Join(t.TempDir(), "out.txt")
	args := []string{"-scenarios", "../../testdata/scenarios/e1-pts-burst.json", "-server", ts.URL, "-o", path}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"e1-pts-burst", "max load", "results sha256:", "simulated", "ran all 1 scenario files against"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("remote report missing %q:\n%s", want, data)
		}
	}

	// Second replay of the identical corpus is served from the cache.
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "served from cache") {
		t.Errorf("second replay not served from cache:\n%s", data)
	}
}

func TestServerFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-server", "http://localhost:1"},
		{"-scenarios", "../../testdata/scenarios", "-server", "http://x", "-validate"},
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("%v accepted, want error", args)
		}
	}
	// An unreachable server is a runtime failure, not a hang.
	err := run(context.Background(), []string{"-scenarios", "../../testdata/scenarios/e1-pts-burst.json", "-server", "http://127.0.0.1:1"})
	if err == nil {
		t.Error("unreachable server accepted")
	}
}

func TestScenarioFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-scenarios", "../../testdata/scenarios", "-json"},
		{"-scenarios", "../../testdata/scenarios", "-list"},
		{"-scenarios", "../../testdata/scenarios", "-run", "E1"},
		{"-scenarios", "../../testdata/scenarios", "-bandwidths", "9"},
		{"-validate"},
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("%v accepted, want flag-conflict error", args)
		}
	}
}

func TestJSONCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, []string{"-run", "E1", "-json", "-o", filepath.Join(t.TempDir(), "x.json")}); err == nil {
		t.Error("cancelled context did not abort the run")
	}
}
