package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "list.txt")
	if err := run([]string{"-list", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, id := range []string{"F1", "E1", "E5", "E10"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f1.txt")
	if err := run([]string{"-run", "F1", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "virtual trajectory") {
		t.Errorf("F1 output missing trajectory:\n%s", data)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBadOutputPath(t *testing.T) {
	if err := run([]string{"-list", "-o", "/nonexistent-dir/x.txt"}); err == nil {
		t.Error("bad output path accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
