// Quickstart: simulate PPTS (Algorithm 2 of the paper) on a 64-node line
// against a randomized (ρ,σ)-bounded adversary with four destinations, and
// check the measured maximum buffer occupancy against Proposition 3.2's
// bound of 1 + d + σ.
package main

import (
	"fmt"
	"log"

	sb "smallbuffers"
)

func main() {
	// A directed path 0 → 1 → … → 63.
	nw, err := sb.NewPath(64)
	if err != nil {
		log.Fatal(err)
	}

	// Demand: average rate ρ = 1 packet per buffer per round, bursts of at
	// most σ = 2 above the average (Definition 2.1 of the paper).
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}

	// A randomized adversary that is (ρ,σ)-bounded by construction,
	// injecting toward four destinations in the right half of the line.
	dests := []sb.NodeID{40, 50, 60, 63}
	adv, err := sb.NewRandomAdversary(nw, bound, dests, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Run PPTS for 2000 rounds. The MaxLoadInvariant aborts the run if the
	// paper's bound is ever exceeded — it never is.
	limit := 1 + len(dests) + bound.Sigma
	res, err := sb.Run(sb.Config{
		Net:       nw,
		Protocol:  sb.NewPPTS(),
		Adversary: adv,
		Rounds:    2000,
		Invariants: []sb.Invariant{
			sb.MaxLoadInvariant(nw, limit),
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("protocol:       %s\n", res.Protocol)
	fmt.Printf("injected:       %d packets over %d rounds\n", res.Injected, res.Rounds)
	fmt.Printf("max buffer use: %d packets (at buffer %d, round %d)\n",
		res.MaxLoad, res.MaxLoadNode, res.MaxLoadRound)
	fmt.Printf("paper bound:    1 + d + σ = %d (Proposition 3.2)\n", limit)
	if res.MaxLoad <= limit {
		fmt.Println("bound holds ✓")
	}
}
