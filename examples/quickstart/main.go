// Quickstart for the two-tier execution API.
//
// Tier 1: simulate PPTS (Algorithm 2 of the paper) on a 64-node line
// against a randomized (ρ,σ)-bounded adversary with four destinations,
// checking the measured maximum buffer occupancy against Proposition 3.2's
// bound of 1 + d + σ. The run is described by a Spec (functional options)
// and executed under a context, so it is cancellable.
//
// Tier 2: sweep the same question across a protocol × path-length × seed
// grid in parallel, and summarize the family of runs.
//
// The old struct-literal form, sb.Run(sb.Config{...}), still works but is
// deprecated in favor of what this program shows.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sb "smallbuffers"
)

func main() {
	// Cancellation propagates into the engine between rounds; a timeout
	// here bounds the whole program.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// --- Tier 1: one run -------------------------------------------------

	// A directed path 0 → 1 → … → 63.
	nw, err := sb.NewPath(64)
	if err != nil {
		log.Fatal(err)
	}

	// Demand: average rate ρ = 1 packet per buffer per round, bursts of at
	// most σ = 2 above the average (Definition 2.1 of the paper).
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}

	// A randomized adversary that is (ρ,σ)-bounded by construction,
	// injecting toward four destinations in the right half of the line.
	dests := []sb.NodeID{40, 50, 60, 63}
	adv, err := sb.NewRandomAdversary(nw, bound, dests, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Run PPTS for 2000 rounds. The MaxLoadInvariant aborts the run if the
	// paper's bound is ever exceeded — it never is.
	limit := 1 + len(dests) + bound.Sigma
	res, err := sb.RunContext(ctx, sb.NewSpec(nw, sb.NewPPTS(), adv, 2000,
		sb.WithInvariants(sb.MaxLoadInvariant(nw, limit)),
	))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("protocol:       %s\n", res.Protocol)
	fmt.Printf("injected:       %d packets over %d rounds\n", res.Injected, res.Rounds)
	fmt.Printf("max buffer use: %d packets (at buffer %d, round %d)\n",
		res.MaxLoad, res.MaxLoadNode, res.MaxLoadRound)
	fmt.Printf("paper bound:    1 + d + σ = %d (Proposition 3.2)\n", limit)
	if res.MaxLoad <= limit {
		fmt.Println("bound holds ✓")
	}

	// --- Tier 2: a parallel sweep ---------------------------------------

	// The paper's statements quantify over families of runs; the Sweep
	// layer runs the family. 2 protocols × 2 path lengths × 4 seeds = 16
	// cells, executed on a bounded worker pool with deterministic per-cell
	// seeds (the same grid reproduces exactly at any worker count).
	sweep := &sb.Sweep{
		Protocols: []sb.SweepProtocol{
			sb.NewSweepProtocol("PPTS", func() sb.Protocol { return sb.NewPPTS() }),
			sb.NewSweepProtocol("Greedy-FIFO", func() sb.Protocol { return sb.NewGreedy(sb.FIFO) }),
		},
		Topologies:  []sb.SweepTopology{sb.SweepPath(64), sb.SweepPath(128)},
		Bounds:      []sb.Bound{bound},
		Adversaries: []sb.SweepAdversary{sb.SweepRandomAdversary(nil)},
		Seeds:       []int64{1, 2, 3, 4},
		Rounds:      []int{2000},
	}
	agg, err := sweep.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsweep:          %d/%d cells completed\n", agg.Completed, agg.Requested)
	fmt.Printf("max load:       mean %.1f, p95 %g, max %g\n",
		agg.MaxLoad.Mean, agg.MaxLoad.Percentile(95), agg.MaxLoad.Max)
	for _, cell := range agg.Cells {
		if cell.Err != nil {
			log.Fatal(cell.Err)
		}
		fmt.Printf("  %-12s %-10s seed=%d → max load %d\n",
			cell.Cell.Protocol, cell.Cell.Topology, cell.Cell.Seed, cell.Result.MaxLoad)
	}
}
