// Visualize: render the paper's Figure 1 (the hierarchical partition of a
// 16-node line with a packet's virtual trajectory), then watch HPTS run on
// that exact hierarchy as an occupancy heatmap.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	sb "smallbuffers"
)

func main() {
	// Figure 1: n = 16, m = 2, ℓ = 4, and the trajectory of a packet from
	// node 0000 to node 1101 (levels 3 → 2 → 0, skipping level 1).
	h, err := sb.NewHierarchy(2, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := sb.RenderFigure1(os.Stdout, h, 0, 13); err != nil {
		log.Fatal(err)
	}

	// Now run HPTS with ℓ = 4 on this 16-node line at rate ρ = 1/4 and
	// render the execution.
	nw, err := sb.NewPath(16)
	if err != nil {
		log.Fatal(err)
	}
	dests := []sb.NodeID{5, 9, 13, 15}
	adv, err := sb.NewRandomAdversary(nw, sb.Bound{Rho: sb.NewRat(1, 4), Sigma: 2}, dests, 9)
	if err != nil {
		log.Fatal(err)
	}
	rec := sb.NewTraceRecorder()
	rec.CaptureEvents = false
	res, err := sb.RunContext(context.Background(), sb.NewSpec(nw, sb.NewHPTS(4), adv, 1200,
		sb.WithObservers(rec)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nHPTS(ℓ=4) on the Figure 1 line, ρ = 1/4: max load %d, bound ℓ·m+σ+1 = %d\n\n",
		res.MaxLoad, 4*2+2+1)
	if err := rec.RenderHeatmap(os.Stdout, 32); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := sb.RenderSparkline(os.Stdout, rec.MaxLoadSeries(), 72); err != nil {
		log.Fatal(err)
	}
}
