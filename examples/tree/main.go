// Tree: information gathering on directed trees (Appendix B.2 of the
// paper). Sensor-style leaves send readings up a spider-shaped in-tree;
// intermediate aggregation points and the root are destinations. TreePPTS
// keeps every buffer within 1 + d′ + σ, where d′ is the number of
// destinations stacked on any single leaf-root path — not the total number
// of destinations.
package main

import (
	"context"
	"fmt"
	"log"

	sb "smallbuffers"
)

func main() {
	// A spider: 4 chains of 6 hops merging into one root (the sink of the
	// gathering tree). 25 nodes total.
	tree, err := sb.SpiderTree(4, 6)
	if err != nil {
		log.Fatal(err)
	}
	root := tree.Sinks()[0]

	// Destinations: three aggregation points along arm 0, plus the root.
	// They form a chain, so d′ = 4 even though other arms see only 1.
	dests := []sb.NodeID{2, 3, 5, root}
	dprime := sb.DestinationDepth(tree, dests)

	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}
	adv, err := sb.TreeBurstAdversary(tree, bound, dests, 600)
	if err != nil {
		log.Fatal(err)
	}

	limit := 1 + dprime + bound.Sigma
	res, err := sb.RunContext(context.Background(), sb.NewSpec(tree, sb.NewTreePPTS(), adv, 600,
		sb.WithInvariants(sb.MaxLoadInvariant(tree, limit))))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tree:            spider, %d nodes, root %d\n", tree.Len(), root)
	fmt.Printf("destinations:    %v (d′ = %d on the deepest chain)\n", dests, dprime)
	fmt.Printf("max buffer use:  %d\n", res.MaxLoad)
	fmt.Printf("paper bound:     1 + d′ + σ = %d (Proposition 3.5)\n", limit)
	fmt.Printf("delivered:       %d of %d\n", res.Delivered, res.Injected)

	// Contrast: the single-destination tree protocol on the same shape.
	adv2, err := sb.TreeBurstAdversary(tree, bound, []sb.NodeID{root}, 600)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := sb.RunContext(context.Background(), sb.NewSpec(tree, sb.NewTreePTS(), adv2, 600))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall-to-root with TreePTS: max %d vs bound 2+σ = %d (Proposition B.3)\n",
		res2.MaxLoad, 2+bound.Sigma)
}
