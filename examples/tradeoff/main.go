// Tradeoff: the paper's headline result as a runnable sweep. On a fixed
// 256-node line where every node is a potential destination (d = 255),
// buffer demand collapses as bandwidth headroom grows: running at rate
// ρ = 1/k admits a protocol (HPTS with ℓ = k levels) whose buffers stay at
// k·d^(1/k) + σ + 1 instead of d.
//
// This is the "with great speed come small buffers" message: a slightly
// slower guaranteed injection rate buys exponentially smaller buffers.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	sb "smallbuffers"
)

func main() {
	const n = 256 // 2^8 admits k ∈ {1, 2, 4, 8}
	const sigma = 2

	nw, err := sb.NewPath(n)
	if err != nil {
		log.Fatal(err)
	}
	dests := make([]sb.NodeID, 0, n-1)
	for v := 1; v < n; v++ {
		dests = append(dests, sb.NodeID(v))
	}

	fmt.Printf("%-10s %-8s %-12s %-10s %-22s %s\n",
		"k=⌊1/ρ⌋", "ρ", "protocol", "measured", "paper: k·d^(1/k)+σ+1", "lower: d^(1/k)/2k")
	for _, k := range []int{1, 2, 4, 8} {
		rho := sb.NewRat(1, int64(k))
		adv, err := sb.NewRandomAdversary(nw, sb.Bound{Rho: rho, Sigma: sigma}, dests, 6)
		if err != nil {
			log.Fatal(err)
		}

		var proto sb.Protocol
		var upper int
		if k == 1 {
			proto = sb.NewPPTS() // full rate: the 1+d+σ regime
			upper = 1 + (n - 1) + sigma
		} else {
			proto = sb.NewHPTS(k) // rate 1/k: the k·n^(1/k)+σ+1 regime
			m := int(math.Round(math.Pow(n, 1/float64(k))))
			upper = k*m + sigma + 1
		}

		res, err := sb.RunContext(context.Background(), sb.NewSpec(nw, proto, adv, 8*k*n))
		if err != nil {
			log.Fatal(err)
		}
		lower := math.Pow(n-1, 1/float64(k)) / float64(2*k)
		fmt.Printf("%-10d %-8v %-12s %-10d %-22d %.1f\n",
			k, rho, res.Protocol, res.MaxLoad, upper, lower)
	}
	fmt.Println("\ninterpretation: multiplying the destination count by α costs either ×α")
	fmt.Println("buffer space (top row) or ×O(log α) bandwidth headroom (bottom rows).")
}
