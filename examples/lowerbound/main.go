// Lowerbound: the Section 5 adversary in action. The pattern is only
// (ρ,1)-bounded — barely bursty at all — yet it drives every forwarding
// protocol, greedy or peak-to-sink, to Ω(((ℓ+1)ρ−1)/2ℓ · n^(1/ℓ)) packets
// in some buffer (Theorem 5.1). The run also verifies the paper's
// fresh/stale accounting (Lemmas 5.2–5.4) live.
package main

import (
	"context"
	"fmt"
	"log"

	sb "smallbuffers"
)

func main() {
	const (
		m   = 8
		ell = 2
	)
	rho := sb.NewRat(3, 4)

	probe, err := sb.NewLowerBoundAdversary(m, ell, rho)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := probe.Network()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern: m=%d ℓ=%d ρ=%v — %d buffers, %d rounds, (ρ,1)-bounded\n",
		m, ell, rho, probe.N(), probe.Rounds())
	fmt.Printf("Theorem 5.1 floor: every protocol must reach ≥ ~%v\n\n", probe.PredictedBound())

	protocols := []func() sb.Protocol{
		func() sb.Protocol { return sb.NewPPTS() },
		func() sb.Protocol { return sb.NewGreedy(sb.FIFO) },
		func() sb.Protocol { return sb.NewGreedy(sb.LIS) },
		func() sb.Protocol { return sb.NewGreedy(sb.NTG) },
		func() sb.Protocol { return sb.NewGreedy(sb.FTG) },
	}
	fmt.Printf("%-14s %-10s %-14s %s\n", "protocol", "max load", "≥ floor?", "staleness lemmas")
	for _, mk := range protocols {
		proto := mk()
		adv, err := sb.NewLowerBoundAdversary(m, ell, rho)
		if err != nil {
			log.Fatal(err)
		}
		tracker := sb.NewStalenessTracker(adv)
		res, err := sb.RunContext(context.Background(), sb.NewSpec(nw, proto, adv, adv.Rounds(),
			sb.WithObservers(tracker)))
		if err != nil {
			log.Fatal(err)
		}
		floor := int(probe.PredictedBound().Ceil())
		lemmas := "5.2–5.4 hold ✓"
		if tracker.Err != nil {
			lemmas = tracker.Err.Error()
		}
		fmt.Printf("%-14s %-10d %-14v %s\n", res.Protocol, res.MaxLoad, res.MaxLoad >= floor, lemmas)
	}
	fmt.Println("\nno clever scheduling escapes the bound: the drifting frontier F(t)")
	fmt.Println("overtakes packets faster than they can be delivered while fresh.")
}
