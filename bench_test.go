package smallbuffers_test

// One benchmark per reproduced artifact (the experiment index of
// DESIGN.md §4), plus micro-benchmarks of the hot paths. Each experiment
// benchmark executes one representative workload of its table per
// iteration; `go test -bench=.` therefore regenerates every measured
// quantity of the paper at a probe scale, and cmd/aqtbench produces the
// full tables.

import (
	"context"
	"fmt"
	"io"
	"testing"

	sb "smallbuffers"
)

// runOnce executes one simulation and reports the max load to the bench.
func runOnce(b *testing.B, spec sb.Spec) sb.Result {
	b.Helper()
	res, err := sb.RunContext(context.Background(), spec)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkE1PTS: Proposition 3.1 workload — PTS under a crafted burst.
func BenchmarkE1PTS(b *testing.B) {
	nw, err := sb.NewPath(64)
	if err != nil {
		b.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.PTSBurstAdversary(nw, bound, 384)
		if err != nil {
			b.Fatal(err)
		}
		res := runOnce(b, sb.NewSpec(nw, sb.NewPTS(), adv, 384))
		if res.MaxLoad > 2+bound.Sigma {
			b.Fatalf("bound violated: %d", res.MaxLoad)
		}
	}
}

// BenchmarkE2PPTS: Proposition 3.2 workload — PPTS with d = 8 destinations.
func BenchmarkE2PPTS(b *testing.B) {
	nw, err := sb.NewPath(64)
	if err != nil {
		b.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.PPTSBurstAdversary(nw, bound, 8, 512)
		if err != nil {
			b.Fatal(err)
		}
		res := runOnce(b, sb.NewSpec(nw, sb.NewPPTS(), adv, 512))
		if res.MaxLoad > 1+8+bound.Sigma {
			b.Fatalf("bound violated: %d", res.MaxLoad)
		}
	}
}

// BenchmarkE3Tree: Proposition 3.5 workload — TreePPTS on a spider.
func BenchmarkE3Tree(b *testing.B) {
	tree, err := sb.SpiderTree(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	root := tree.Sinks()[0]
	dests := []sb.NodeID{1, 2, 3, root}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.TreeBurstAdversary(tree, bound, dests, 300)
		if err != nil {
			b.Fatal(err)
		}
		runOnce(b, sb.NewSpec(tree, sb.NewTreePPTS(), adv, 300))
	}
}

// BenchmarkE4HPTS: Theorem 4.1 workload — HPTS(ℓ=2) on 64 = 8² nodes at
// ρ = 1/2.
func BenchmarkE4HPTS(b *testing.B) {
	nw, err := sb.NewPath(64)
	if err != nil {
		b.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 2}
	dests := []sb.NodeID{15, 31, 47, 63}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.NewRandomAdversary(nw, bound, dests, 11)
		if err != nil {
			b.Fatal(err)
		}
		res := runOnce(b, sb.NewSpec(nw, sb.NewHPTS(2), adv, 1024))
		if res.MaxLoad > 2*8+bound.Sigma+1 {
			b.Fatalf("bound violated: %d", res.MaxLoad)
		}
	}
}

// BenchmarkE5LowerBound: Theorem 5.1 workload — the Section 5 pattern vs
// PPTS (m=8, ℓ=2, ρ=3/4).
func BenchmarkE5LowerBound(b *testing.B) {
	probe, err := sb.NewLowerBoundAdversary(8, 2, sb.NewRat(3, 4))
	if err != nil {
		b.Fatal(err)
	}
	nw, err := probe.Network()
	if err != nil {
		b.Fatal(err)
	}
	floor := int(probe.PredictedBound().Ceil())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.NewLowerBoundAdversary(8, 2, sb.NewRat(3, 4))
		if err != nil {
			b.Fatal(err)
		}
		res := runOnce(b, sb.NewSpec(nw, sb.NewPPTS(), adv, adv.Rounds()))
		if res.MaxLoad < floor {
			b.Fatalf("floor missed: %d < %d", res.MaxLoad, floor)
		}
	}
}

// BenchmarkE6Tradeoff: the headline tradeoff at one representative point —
// HPTS(ℓ=2) at ρ=1/2 with every node a destination, n = 256.
func BenchmarkE6Tradeoff(b *testing.B) {
	nw, err := sb.NewPath(256)
	if err != nil {
		b.Fatal(err)
	}
	dests := make([]sb.NodeID, 0, 255)
	for v := 1; v < 256; v++ {
		dests = append(dests, sb.NodeID(v))
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.NewRandomAdversary(nw, bound, dests, 6)
		if err != nil {
			b.Fatal(err)
		}
		res := runOnce(b, sb.NewSpec(nw, sb.NewHPTS(2), adv, 1024))
		if res.MaxLoad > 2*16+bound.Sigma+1 {
			b.Fatalf("bound violated: %d", res.MaxLoad)
		}
	}
}

// BenchmarkE7Greedy: the greedy-handicap workload — FIFO under the
// multi-destination stress pattern.
func BenchmarkE7Greedy(b *testing.B) {
	nw, err := sb.NewPath(64)
	if err != nil {
		b.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.GreedyKillerAdversary(nw, bound, 16, 768)
		if err != nil {
			b.Fatal(err)
		}
		runOnce(b, sb.NewSpec(nw, sb.NewGreedy(sb.FIFO), adv, 768))
	}
}

// BenchmarkE8Ablation: HPTS without ActivatePreBad (the ablated variant of
// Algorithm 5) on the E4 workload.
func BenchmarkE8Ablation(b *testing.B) {
	nw, err := sb.NewPath(64)
	if err != nil {
		b.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 2}
	dests := []sb.NodeID{15, 31, 47, 63}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.NewRandomAdversary(nw, bound, dests, 11)
		if err != nil {
			b.Fatal(err)
		}
		runOnce(b, sb.NewSpec(nw, sb.NewHPTS(2, sb.HPTSAblatePreBad()), adv, 1024))
	}
}

// BenchmarkE9Exact: the exhaustive offline optimum on the smallest
// Section 5 instance.
func BenchmarkE9Exact(b *testing.B) {
	probe, err := sb.NewLowerBoundAdversary(2, 2, sb.NewRat(1, 2))
	if err != nil {
		b.Fatal(err)
	}
	nw, err := probe.Network()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.NewLowerBoundAdversary(2, 2, sb.NewRat(1, 2))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sb.SolveOptimal(sb.OptConfig{
			Net: nw, Adversary: adv, Rounds: adv.Rounds(),
			MaxStates: 4_000_000, MaxBranch: 1 << 16,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Locality: the locality-gap workload — plain downhill
// converging to its staircase steady state on a 16-node line.
func BenchmarkE10Locality(b *testing.B) {
	nw, err := sb.NewPath(16)
	if err != nil {
		b.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv := sb.NewStream(bound, 0, 15)
		res := runOnce(b, sb.NewSpec(nw, sb.NewDownhill(), adv, 768))
		if res.MaxLoad != 15 {
			b.Fatalf("staircase height %d, want 15", res.MaxLoad)
		}
	}
}

// BenchmarkE11Latency: the latency-vs-space workload with the latency
// recorder attached (PPTS+drain arm).
func BenchmarkE11Latency(b *testing.B) {
	nw, err := sb.NewPath(64)
	if err != nil {
		b.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 2}
	dests := []sb.NodeID{56, 57, 58, 59, 60, 61, 62, 63}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.NewRandomAdversary(nw, bound, dests, 12)
		if err != nil {
			b.Fatal(err)
		}
		runOnce(b, sb.NewSpec(nw, sb.NewPPTS(sb.PPTSWithDrain()), adv, 1024))
	}
}

// BenchmarkAdaptiveHotSpot: engine + adaptive adversary round-trip cost.
func BenchmarkAdaptiveHotSpot(b *testing.B) {
	nw, err := sb.NewPath(64)
	if err != nil {
		b.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}
	dests := []sb.NodeID{40, 50, 60, 63}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.NewHotSpotAdversary(nw, bound, dests, 7)
		if err != nil {
			b.Fatal(err)
		}
		res := runOnce(b, sb.NewSpec(nw, sb.NewPPTS(), adv, 512))
		if res.MaxLoad > 1+4+2 {
			b.Fatalf("bound violated: %d", res.MaxLoad)
		}
	}
}

// BenchmarkF1Figure: Figure 1 rendering.
func BenchmarkF1Figure(b *testing.B) {
	h, err := sb.NewHierarchy(2, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sb.RenderFigure1(io.Discard, h, 0, 13); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkEngineGreedyThroughput measures raw engine rounds/sec with a
// greedy protocol on a 256-node line (reported as ns per 1024-round run).
func BenchmarkEngineGreedyThroughput(b *testing.B) {
	nw, err := sb.NewPath(256)
	if err != nil {
		b.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv := sb.NewStream(bound, 0, 255)
		runOnce(b, sb.NewSpec(nw, sb.NewGreedy(sb.FIFO), adv, 1024))
	}
}

// BenchmarkEngineReuse measures the allocation savings of Reset-driven
// engine reuse: one engine executes every iteration's run.
func BenchmarkEngineReuse(b *testing.B) {
	nw, err := sb.NewPath(256)
	if err != nil {
		b.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 0}
	mkSpec := func() sb.Spec {
		return sb.NewSpec(nw, sb.NewGreedy(sb.FIFO), sb.NewStream(bound, 0, 255), 1024)
	}
	eng, err := sb.NewEngine(mkSpec())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Reset(mkSpec()); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep32 executes the 32-cell acceptance grid on the worker
// pool; reported time is per whole sweep.
func BenchmarkSweep32(b *testing.B) {
	mk := func() *sb.Sweep {
		return &sb.Sweep{
			Protocols: []sb.SweepProtocol{
				sb.NewSweepProtocol("TreePTS", func() sb.Protocol { return sb.NewTreePTS() }),
				sb.NewSweepProtocol("TreePPTS", func() sb.Protocol { return sb.NewTreePPTS() }),
				sb.NewSweepProtocol("FIFO", func() sb.Protocol { return sb.NewGreedy(sb.FIFO) }),
				sb.NewSweepProtocol("LIS", func() sb.Protocol { return sb.NewGreedy(sb.LIS) }),
			},
			Topologies: []sb.SweepTopology{
				sb.SweepPath(32),
				{Name: "binary(4)", New: func() (*sb.Network, error) { return sb.BinaryTree(4) }},
			},
			Bounds:      []sb.Bound{{Rho: sb.NewRat(1, 1), Sigma: 2}},
			Adversaries: []sb.SweepAdversary{sb.SweepRandomAdversary(nil)},
			Seeds:       []int64{1, 2, 3, 4},
			Rounds:      []int{400},
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		agg, err := mk().Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if agg.Completed != 32 {
			b.Fatalf("completed %d cells: %v", agg.Completed, agg.FirstErr())
		}
	}
}

// BenchmarkPPTSDecide isolates PPTS's per-round decision cost at a loaded
// configuration (64 nodes, 8 destinations).
func BenchmarkPPTSDecide(b *testing.B) {
	nw, err := sb.NewPath(64)
	if err != nil {
		b.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.PPTSBurstAdversary(nw, bound, 8, 256)
		if err != nil {
			b.Fatal(err)
		}
		runOnce(b, sb.NewSpec(nw, sb.NewPPTS(), adv, 256))
	}
}

// BenchmarkAdversaryVerifier measures the exact (ρ,σ) verifier on a random
// pattern.
func BenchmarkAdversaryVerifier(b *testing.B) {
	nw, err := sb.NewPath(128)
	if err != nil {
		b.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := sb.NewRandomAdversary(nw, bound, nil, 5)
		if err != nil {
			b.Fatal(err)
		}
		if err := sb.VerifyAdversary(nw, adv, 512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierarchyClass measures the pseudo-buffer classification that
// HPTS performs per packet per round.
func BenchmarkHierarchyClass(b *testing.B) {
	h, err := sb.NewHierarchy(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	n := 256
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		segs := h.Segments(i%(n-1), n-1)
		sum += len(segs)
	}
	_ = sum
}

// ExampleRenderFigure1 pins the Figure 1 reproduction as a documented,
// verified example.
func ExampleRenderFigure1() {
	h, err := sb.NewHierarchy(2, 2)
	if err != nil {
		panic(err)
	}
	if err := sb.RenderFigure1(ioDiscardIndent{}, h, 0, 3); err != nil {
		panic(err)
	}
	fmt.Println("levels:", h.Levels(), "intervals at level 0:", h.IntervalCount(0))
	// Output: levels: 2 intervals at level 0: 2
}

// ioDiscardIndent is a tiny io.Writer for the example.
type ioDiscardIndent struct{}

func (ioDiscardIndent) Write(p []byte) (int, error) { return len(p), nil }
