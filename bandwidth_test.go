package smallbuffers_test

// Tests for the bandwidth axis through the public API: capacitated
// topology construction, the Sweep Bandwidths axis, monotonicity of the
// paper protocols' max load in B, per-link utilization reporting, and
// super-unit demand admissibility.

import (
	"context"
	"testing"

	sb "smallbuffers"
)

func TestNetworkBandwidthAccessors(t *testing.T) {
	nw, err := sb.NewPath(8, sb.WithUniformBandwidth(4), sb.WithLinkBandwidth(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Bandwidth(0); got != 4 {
		t.Errorf("Bandwidth(0) = %d, want 4", got)
	}
	if got := nw.Bandwidth(3); got != 2 {
		t.Errorf("Bandwidth(3) = %d, want 2 (per-link override)", got)
	}
	if got := nw.BottleneckBandwidth(); got != 2 {
		t.Errorf("BottleneckBandwidth = %d, want 2", got)
	}
	if b, uniform := nw.UniformBandwidth(); uniform {
		t.Errorf("UniformBandwidth = (%d, true), want non-uniform", b)
	}
	plain, err := sb.NewPath(4)
	if err != nil {
		t.Fatal(err)
	}
	if b, uniform := plain.UniformBandwidth(); !uniform || b != 1 {
		t.Errorf("default UniformBandwidth = (%d, %t), want (1, true)", b, uniform)
	}
}

func TestSweepBandwidthAxisMonotone(t *testing.T) {
	// The acceptance shape of the redesign: a Bandwidths sweep through the
	// public Sweep API, max load non-increasing in B for PTS and PPTS on
	// paths. Super-unit demand (ρ=2) makes the decrease strict territory;
	// the axis replays identical injections per B.
	dests := func(n int) []sb.NodeID {
		var out []sb.NodeID
		for k := 0; k < 4; k++ {
			out = append(out, sb.NodeID(n-4+k))
		}
		return out
	}
	cases := []struct {
		name  string
		proto func() sb.Protocol
		dests []sb.NodeID
	}{
		{"PTS", func() sb.Protocol { return sb.NewPTS() }, nil},
		{"PPTS", func() sb.Protocol { return sb.NewPPTS() }, dests(48)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sweep := &sb.Sweep{
				Protocols:  []sb.SweepProtocol{sb.NewSweepProtocol(tc.name, tc.proto)},
				Topologies: []sb.SweepTopology{sb.SweepPath(48)},
				Bounds:     []sb.Bound{{Rho: sb.NewRat(2, 1), Sigma: 3}},
				Adversaries: []sb.SweepAdversary{
					sb.SweepRandomAdversary(tc.dests),
				},
				Bandwidths:      []int{2, 4, 8},
				Rounds:          []int{600},
				VerifyAdversary: true,
			}
			res, err := sweep.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if err := res.FirstErr(); err != nil {
				t.Fatal(err)
			}
			if res.Completed != 3 {
				t.Fatalf("completed %d cells, want 3", res.Completed)
			}
			prevLoad, prevInjected := -1, -1
			for _, cr := range res.Cells {
				if prevLoad >= 0 && cr.Result.MaxLoad > prevLoad {
					t.Errorf("%s: max load increased with bandwidth: B=%d → %d packets (previous %d)",
						tc.name, cr.Cell.Bandwidth, cr.Result.MaxLoad, prevLoad)
				}
				if prevInjected >= 0 && cr.Result.Injected != prevInjected {
					t.Errorf("%s: B=%d replayed %d injections, want %d (bandwidth must not change the derived seed)",
						tc.name, cr.Cell.Bandwidth, cr.Result.Injected, prevInjected)
				}
				prevLoad, prevInjected = cr.Result.MaxLoad, cr.Result.Injected
			}
		})
	}
}

func TestSweepBandwidthAxisValidation(t *testing.T) {
	sweep := &sb.Sweep{
		Protocols:   []sb.SweepProtocol{sb.NewSweepProtocol("PTS", func() sb.Protocol { return sb.NewPTS() })},
		Topologies:  []sb.SweepTopology{sb.SweepPath(8)},
		Bounds:      []sb.Bound{{Rho: sb.NewRat(1, 1), Sigma: 1}},
		Adversaries: []sb.SweepAdversary{sb.SweepRandomAdversary(nil)},
		Bandwidths:  []int{0},
		Rounds:      []int{10},
	}
	if _, err := sweep.Run(context.Background()); err == nil {
		t.Error("sweep accepted bandwidth axis entry 0")
	}
}

func TestSuperUnitRateAdmissibility(t *testing.T) {
	fast, err := sb.NewPath(16, sb.WithUniformBandwidth(4))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := sb.NewPath(16)
	if err != nil {
		t.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(3, 1), Sigma: 2}
	if _, err := sb.NewRandomAdversary(fast, bound, nil, 1); err != nil {
		t.Errorf("ρ=3 rejected on a B=4 network: %v", err)
	}
	if _, err := sb.NewRandomAdversary(slow, bound, nil, 1); err == nil {
		t.Error("ρ=3 accepted on a unit-capacity network")
	}
	// A super-unit pattern must still verify against its declared bound.
	adv, err := sb.NewRandomAdversary(fast, bound, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.VerifyAdversary(fast, adv, 400); err != nil {
		t.Errorf("shaped super-unit pattern violated its own bound: %v", err)
	}
}

func TestLinkUtilizationReported(t *testing.T) {
	nw, err := sb.NewPath(8, sb.WithUniformBandwidth(2))
	if err != nil {
		t.Fatal(err)
	}
	adv := sb.NewStream(sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 1}, 0, 7)
	res, err := sb.RunContext(context.Background(),
		sb.NewSpec(nw, sb.NewPTS(sb.PTSWithDrain()), adv, 200))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.LinkUtilization(7); ok {
		t.Error("sink reported a link utilization")
	}
	util, ok := res.LinkUtilization(0)
	if !ok {
		t.Fatal("no utilization for link 0")
	}
	// A rate-1 stream over B=2 links uses about half the budget.
	if util <= 0.2 || util >= 0.8 {
		t.Errorf("link 0 utilization = %.2f, want ≈ 0.5 for a rate-1 stream on B=2", util)
	}
	if link, peak, ok := res.MaxLinkUtilization(); !ok || peak < util {
		t.Errorf("MaxLinkUtilization = (%d, %.2f, %t), want ≥ link-0 utilization", link, peak, ok)
	}
}

func TestEngineDeliversEverythingFasterWithBandwidth(t *testing.T) {
	// Sanity on throughput: the same demand leaves fewer packets in flight
	// at the horizon when links are faster.
	residualAt := func(b int) int {
		nw, err := sb.NewPath(32, sb.WithUniformBandwidth(b))
		if err != nil {
			t.Fatal(err)
		}
		adv, err := sb.NewRandomAdversary(nw, sb.Bound{Rho: sb.NewRat(2, 1), Sigma: 2}, nil, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sb.RunContext(context.Background(),
			sb.NewSpec(nw, sb.NewPTS(sb.PTSWithDrain()), adv, 400))
		if err != nil {
			t.Fatal(err)
		}
		return res.Residual
	}
	if r2, r8 := residualAt(2), residualAt(8); r8 > r2 {
		t.Errorf("residual grew with bandwidth: B=2 → %d, B=8 → %d", r2, r8)
	}
}
