package smallbuffers_test

// Corpus digest gate: every scenario file in testdata/scenarios/ must
// reproduce the results digest pinned in testdata/corpus_digests.json.
// The pre-fault entries were captured before the fault subsystem landed,
// so this test is the executable form of the zero-fault compatibility
// contract — scenarios without a faults axis stay byte-identical, record
// for record, digest for digest. New or intentionally changed scenarios
// regenerate their entry with:
//
//	go run ./cmd/aqtsim -scenario testdata/scenarios/<file> -result-digest

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	sb "smallbuffers"
)

func TestCorpusDigestsPinned(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "corpus_digests.json"))
	if err != nil {
		t.Fatal(err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(want) {
		t.Errorf("corpus has %d scenario files but %d pinned digests — regenerate testdata/corpus_digests.json", len(files), len(want))
	}
	for _, file := range files {
		file := file
		name := filepath.Base(file)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pinned, ok := want[name]
			if !ok {
				t.Fatalf("no pinned digest for %s — add it to testdata/corpus_digests.json", name)
			}
			sc, err := sb.LoadScenarioFile(file)
			if err != nil {
				t.Fatal(err)
			}
			agg, err := sc.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := sb.SweepResultsDigest(agg.Records()); got != pinned {
				t.Errorf("results digest drifted:\n got %s\nwant %s\nIf the change is intentional, regenerate the pinned entry; if not, the simulation semantics changed.", got, pinned)
			}
		})
	}
}
