package smallbuffers_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	sb "smallbuffers"
)

// TestServingFacade exercises the Tier-3 surface end to end: digest the
// scenario, serve it over HTTP via NewServer, and check the served
// results digest against a local run.
func TestServingFacade(t *testing.T) {
	src := `{
		"name": "facade-serving",
		"topology": {"name": "path", "params": {"n": 16}},
		"protocol": {"name": "ppts"},
		"adversary": {"name": "random", "params": {"d": 2}},
		"bound": {"rho": "1/2", "sigma": 2},
		"rounds": 120,
		"seeds": [1, 2]
	}`
	sc, err := sb.ParseScenario([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	scenarioDigest, err := sc.Digest()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	localDigest := agg.Digest()
	if localDigest != sb.SweepResultsDigest(agg.Records()) {
		t.Error("SweepResultsDigest disagrees with SweepResult.Digest")
	}

	srv := sb.NewServer(sb.ServerConfig{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep sb.ServerReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/runs = %d (%s)", resp.StatusCode, rep.Error)
	}
	if rep.Digest != scenarioDigest {
		t.Errorf("served scenario digest %s, local %s", rep.Digest, scenarioDigest)
	}
	if rep.ResultsDigest != localDigest {
		t.Errorf("served results digest %s, local %s", rep.ResultsDigest, localDigest)
	}

	cat := sb.Catalog()
	if len(cat.Protocols) == 0 || len(cat.Adversaries) == 0 {
		t.Errorf("catalog incomplete: %d protocols, %d adversaries", len(cat.Protocols), len(cat.Adversaries))
	}
}
