package smallbuffers_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	sb "smallbuffers"
)

// TestPublicAPIEndToEnd drives the whole library through the facade only:
// build a topology, construct adversaries, run every protocol family, and
// check the paper's bounds.
func TestPublicAPIEndToEnd(t *testing.T) {
	nw, err := sb.NewPath(64)
	if err != nil {
		t.Fatal(err)
	}
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 2}

	t.Run("PPTS_random", func(t *testing.T) {
		dests := []sb.NodeID{40, 50, 60, 63}
		adv, err := sb.NewRandomAdversary(nw, bound, dests, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sb.RunContext(context.Background(), sb.NewSpec(nw, sb.NewPPTS(), adv, 500,
			sb.WithInvariants(sb.MaxLoadInvariant(nw, 1+4+2))))
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxLoad > 1+4+2 {
			t.Errorf("PPTS exceeded Proposition 3.2: %d > %d", res.MaxLoad, 7)
		}
	})

	t.Run("PTS_burst", func(t *testing.T) {
		adv, err := sb.PTSBurstAdversary(nw, bound, 300)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sb.RunContext(context.Background(), sb.NewSpec(nw, sb.NewPTS(sb.PTSWithDrain()), adv, 300))
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxLoad > 2+2 {
			t.Errorf("PTS exceeded Proposition 3.1: %d > 4", res.MaxLoad)
		}
		if res.Delivered == 0 {
			t.Error("drain delivered nothing")
		}
	})

	t.Run("HPTS", func(t *testing.T) {
		adv, err := sb.NewRandomAdversary(nw, sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 2}, nil, 3)
		if err != nil {
			t.Fatal(err)
		}
		h, err := sb.NewHierarchy(8, 2)
		if err != nil {
			t.Fatal(err)
		}
		_ = h
		res, err := sb.RunContext(context.Background(), sb.NewSpec(nw, sb.NewHPTS(2), adv, 800))
		if err != nil {
			t.Fatal(err)
		}
		if limit := 2*8 + 2 + 1; res.MaxLoad > limit {
			t.Errorf("HPTS exceeded Theorem 4.1: %d > %d", res.MaxLoad, limit)
		}
	})

	t.Run("greedy_baselines", func(t *testing.T) {
		if got := len(sb.AllGreedy()); got != 6 {
			t.Fatalf("AllGreedy = %d, want 6", got)
		}
		adv := sb.NewStream(bound, 0, 63)
		res, err := sb.RunContext(context.Background(), sb.NewSpec(nw, sb.NewGreedy(sb.NTG), adv, 200))
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered == 0 {
			t.Error("greedy delivered nothing")
		}
	})
}

func TestPublicAPITrees(t *testing.T) {
	tree, err := sb.SpiderTree(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Sinks()[0]
	dests := []sb.NodeID{1, 2, 3, root}
	dprime := sb.DestinationDepth(tree, dests)
	bound := sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 1}
	adv, err := sb.TreeBurstAdversary(tree, bound, dests, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sb.RunContext(context.Background(), sb.NewSpec(tree, sb.NewTreePPTS(), adv, 200))
	if err != nil {
		t.Fatal(err)
	}
	if limit := 1 + dprime + 1; res.MaxLoad > limit {
		t.Errorf("TreePPTS exceeded Proposition 3.5: %d > %d", res.MaxLoad, limit)
	}
}

func TestPublicAPILowerBound(t *testing.T) {
	lb, err := sb.NewLowerBoundAdversary(4, 2, sb.NewRat(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := lb.Network()
	if err != nil {
		t.Fatal(err)
	}
	tracker := sb.NewStalenessTracker(lb)
	res, err := sb.RunContext(context.Background(), sb.NewSpec(nw, sb.NewPPTS(), lb, lb.Rounds(),
		sb.WithObservers(tracker)))
	if err != nil {
		t.Fatal(err)
	}
	if floor := int(lb.PredictedBound().Ceil()); res.MaxLoad < floor {
		t.Errorf("Theorem 5.1 floor missed: %d < %d", res.MaxLoad, floor)
	}
	if tracker.Err != nil {
		t.Errorf("staleness lemmas: %v", tracker.Err)
	}
}

func TestPublicAPIVerifier(t *testing.T) {
	nw, err := sb.NewPath(8)
	if err != nil {
		t.Fatal(err)
	}
	good := sb.NewStream(sb.Bound{Rho: sb.NewRat(1, 2), Sigma: 1}, 0, 7)
	if err := sb.VerifyAdversary(nw, good, 100); err != nil {
		t.Errorf("stream rejected: %v", err)
	}
	// A schedule violating its declared bound is caught.
	bad := sb.NewSchedule().AtN(0, 5, 0, 7).Build(sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 1})
	if err := sb.VerifyAdversary(nw, bad, 5); err == nil {
		t.Error("violation not caught")
	}
}

func TestPublicAPITraceAndFigure(t *testing.T) {
	nw, err := sb.NewPath(16)
	if err != nil {
		t.Fatal(err)
	}
	rec := sb.NewTraceRecorder()
	adv := sb.NewStream(sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 0}, 0, 15)
	if _, err := sb.RunContext(context.Background(), sb.NewSpec(nw, sb.NewGreedy(sb.FIFO), adv, 50,
		sb.WithObservers(rec))); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.RenderHeatmap(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "occupancy heatmap") {
		t.Error("heatmap missing header")
	}
	buf.Reset()
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"loads\"") {
		t.Error("JSON missing loads")
	}

	buf.Reset()
	h, err := sb.NewHierarchy(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.RenderFigure1(&buf, h, 0, 13); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "virtual trajectory") {
		t.Error("figure missing trajectory")
	}
}

func TestPublicAPIOptimal(t *testing.T) {
	nw, err := sb.NewPath(5)
	if err != nil {
		t.Fatal(err)
	}
	adv := sb.NewSchedule().At(0, 0, 4).At(0, 1, 4).Build(sb.Bound{Rho: sb.NewRat(1, 1), Sigma: 1})
	res, err := sb.SolveOptimal(sb.OptConfig{Net: nw, Adversary: adv, Rounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptMaxLoad != 1 {
		t.Errorf("optimal = %d, want 1", res.OptMaxLoad)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if got := len(sb.Experiments()); got != 14 {
		t.Fatalf("Experiments = %d, want 14", got)
	}
	e, err := sb.ExperimentByID("F1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	out, err := e.Run(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK {
		t.Error("F1 failed")
	}
}

func TestParseRat(t *testing.T) {
	r, err := sb.ParseRat("3/4")
	if err != nil || !r.Equal(sb.NewRat(3, 4)) {
		t.Errorf("ParseRat = %v, %v", r, err)
	}
}
