module smallbuffers

go 1.24
